// Config fuzzing: randomized *invalid* configurations must always surface as a
// structured ConfigError — never an assert, a crash, a hang, or a silently nonsensical
// simulation. Each case draws a valid config, applies one randomly chosen invalidating
// mutation, and checks the construction/validation path throws ConfigError (and
// nothing else). Runs under ASan/UBSan in CI, so any latent UB on the rejection paths
// fails loudly.

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/core/admission.h"
#include "src/fault/fault_plan.h"
#include "src/mem/disk.h"
#include "src/net/link.h"
#include "src/session/server.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"
#include "src/util/config_error.h"

namespace tcs {
namespace {

class ConfigFuzz : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, ConfigFuzz,
                         ::testing::Values<uint64_t>(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// Runs `fn` and requires that it throws ConfigError specifically: any other exception
// (or none) is a bug in the rejection path.
template <typename Fn>
void ExpectConfigError(Fn fn, const char* what) {
  try {
    fn();
    ADD_FAILURE() << what << ": invalid config was accepted";
  } catch (const ConfigError&) {
    // expected
  } catch (const std::exception& e) {
    ADD_FAILURE() << what << ": threw " << e.what() << " instead of ConfigError";
  }
}

// Negative or otherwise impossible magnitudes to mutate fields with.
int64_t BadMagnitude(Rng& rng) {
  switch (rng.NextInt(0, 2)) {
    case 0:
      return 0;
    case 1:
      return -1;
    default:
      return -rng.NextInt(1, 1000000);
  }
}

TEST_P(ConfigFuzz, InvalidLinkConfigsAlwaysThrow) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    LinkConfig cfg;
    switch (rng.NextInt(0, 4)) {
      case 0:
        cfg.rate = BitsPerSecond::Of(BadMagnitude(rng));
        break;
      case 1:
        cfg.mtu = Bytes::Of(BadMagnitude(rng));
        break;
      case 2:
        cfg.propagation = Duration::Micros(-rng.NextInt(1, 100000));
        break;
      case 3:
        cfg.load_bucket = Duration::Micros(BadMagnitude(rng));
        break;
      default:
        cfg.csma_cd = true;
        cfg.backoff_slot = Duration::Micros(BadMagnitude(rng));
        break;
    }
    ExpectConfigError(
        [&] {
          Simulator sim;
          Link link(sim, cfg);
        },
        "LinkConfig");
  }
}

TEST_P(ConfigFuzz, InvalidDiskConfigsAlwaysThrow) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    DiskConfig cfg;
    switch (rng.NextInt(0, 2)) {
      case 0:
        cfg.transfer_rate = BitsPerSecond::Of(BadMagnitude(rng));
        break;
      case 1:
        cfg.page_size = Bytes::Of(BadMagnitude(rng));
        break;
      default:
        cfg.positioning_mean = Duration::Micros(-rng.NextInt(1, 100000));
        break;
    }
    ExpectConfigError(
        [&] {
          Simulator sim;
          Disk disk(sim, Rng(1), cfg);
        },
        "DiskConfig");
  }
}

TEST_P(ConfigFuzz, InvalidFaultPlansAlwaysThrow) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    FaultPlan plan;
    switch (rng.NextInt(0, 5)) {
      case 0:  // rates live in [0, 1)
        plan.link.loss_rate = rng.NextBool(0.5) ? 1.0 + rng.NextDouble() : -0.25;
        break;
      case 1:
        plan.disk.error_rate = rng.NextBool(0.5) ? 1.5 : -rng.NextDouble();
        break;
      case 2: {  // overlapping outage windows
        TimePoint a = TimePoint::FromMicros(rng.NextInt(0, 1000));
        plan.link.scripted_outages = {
            {a, a + Duration::Millis(100)},
            {a + Duration::Millis(50), a + Duration::Millis(200)}};
        break;
      }
      case 3: {  // empty (until <= from) outage window
        TimePoint a = TimePoint::FromMicros(rng.NextInt(1000, 2000));
        plan.link.scripted_outages = {{a, a - Duration::Micros(rng.NextInt(0, 999))}};
        break;
      }
      case 4:  // flap_every without flap_duration (and vice versa)
        if (rng.NextBool(0.5)) {
          plan.link.flap_every = Duration::Millis(500);
        } else {
          plan.link.flap_duration = Duration::Millis(50);
        }
        break;
      default:  // disconnects enabled with a non-positive reconnect delay
        plan.session.disconnect_every = Duration::Seconds(5);
        plan.session.reconnect_after = Duration::Micros(BadMagnitude(rng));
        break;
    }
    ExpectConfigError([&] { Validate(plan); }, "FaultPlan");
    // The same plan through the server's front door must be rejected identically,
    // before any model is built.
    ExpectConfigError(
        [&] {
          Simulator sim;
          ServerConfig cfg;
          cfg.faults = plan;
          Server server(sim, OsProfile::Tse(), cfg);
        },
        "ServerConfig.faults");
  }
}

TEST_P(ConfigFuzz, InvalidServerConfigsAlwaysThrow) {
  Rng rng(GetParam());
  for (int i = 0; i < 30; ++i) {
    ServerConfig cfg;
    switch (rng.NextInt(0, 2)) {
      case 0:
        cfg.ram = Bytes::Of(BadMagnitude(rng));
        break;
      case 1:
        cfg.tap_bucket = Duration::Micros(BadMagnitude(rng));
        break;
      default:
        cfg.pager_throttle = Duration::Micros(-rng.NextInt(1, 100000));
        break;
    }
    ExpectConfigError(
        [&] {
          Simulator sim;
          Server server(sim, OsProfile::LinuxX(), cfg);
        },
        "ServerConfig");
  }
}

TEST_P(ConfigFuzz, InvalidConsolidationOptionsAlwaysThrow) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    ConsolidationOptions opt;
    switch (rng.NextInt(0, 7)) {
      case 0:
        opt.users = -static_cast<int>(rng.NextInt(0, 100));
        break;
      case 1:
        opt.duration = Duration::Micros(BadMagnitude(rng));
        break;
      case 2:
        opt.keystroke_period = Duration::Micros(BadMagnitude(rng));
        break;
      case 3:
        opt.processors = -static_cast<int>(rng.NextInt(0, 16));
        break;
      case 4:
        opt.ram = Bytes::Of(BadMagnitude(rng));
        break;
      case 5:
        opt.stagger = Duration::Micros(-rng.NextInt(1, 100000));
        break;
      case 6:
        opt.burst_cpu = Duration::Millis(100);
        opt.burst_period = Duration::Micros(BadMagnitude(rng));
        break;
      default:
        opt.sinks = -static_cast<int>(rng.NextInt(1, 100));
        break;
    }
    ExpectConfigError([&] { Validated(opt); }, "ConsolidationOptions");
    // RunConsolidation must reject the same shapes up front rather than simulating
    // nonsense (e.g. a zero-cadence typist spinning forever).
    ExpectConfigError([&] { RunConsolidation(OsProfile::Tse(), opt); },
                      "RunConsolidation");
  }
}

TEST_P(ConfigFuzz, InvalidCapacityOptionsAlwaysThrow) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    CapacityOptions opt;
    switch (rng.NextInt(0, 3)) {
      case 0:
        opt.max_users = -static_cast<int>(rng.NextInt(0, 50));
        break;
      case 1:
        opt.admission.max_utilization =
            rng.NextBool(0.5) ? -rng.NextDouble() : 1.0 + rng.NextDouble() + 1e-9;
        break;
      case 2:
        opt.admission.max_p99_stall = Duration::Micros(BadMagnitude(rng));
        break;
      default:
        opt.behavior.keystroke_period = Duration::Micros(BadMagnitude(rng));
        break;
    }
    ExpectConfigError([&] { Validated(opt); }, "CapacityOptions");
    ExpectConfigError([&] { RunServerCapacity(OsProfile::Tse(), opt); },
                      "RunServerCapacity");
  }
}

}  // namespace
}  // namespace tcs
