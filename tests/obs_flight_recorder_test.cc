#include "src/obs/flight_recorder.h"

#include <string>

#include <gtest/gtest.h>

#include "src/sim/time.h"

namespace tcs {
namespace {

TimePoint Us(int64_t us) { return TimePoint::FromMicros(us); }

TEST(FlightRecorderTest, CapacityRoundsUpToAPowerOfTwo) {
  FlightRecorderConfig cfg;
  cfg.capacity = 1;
  FlightRecorder recorder(cfg);
  EXPECT_EQ(recorder.capacity(), 1024u);  // floor: 1024 records

  FlightRecorderConfig cfg2;
  cfg2.capacity = 1025;
  FlightRecorder recorder2(cfg2);
  EXPECT_EQ(recorder2.capacity(), 2048u);
}

TEST(FlightRecorderTest, RecordsSeenIsMonotonicPastCapacity) {
  FlightRecorderConfig cfg;
  cfg.capacity = 1024;
  cfg.window = Duration::Seconds(10);
  FlightRecorder recorder(cfg);
  for (int i = 0; i < 3000; ++i) {
    recorder.Instant(FlightComponent::kSim, "tick", Us(i));
  }
  EXPECT_EQ(recorder.records_seen(), 3000u);
  recorder.Freeze(Us(3000));
  // The ring only holds the last `capacity` records; the oldest 1976 were overwritten.
  ASSERT_EQ(recorder.frozen_window().size(), 1024u);
  EXPECT_EQ(recorder.frozen_window().front().ts_us, 3000 - 1024);
  EXPECT_EQ(recorder.frozen_window().back().ts_us, 2999);
}

TEST(FlightRecorderTest, FreezeKeepsOnlyTheConfiguredWindow) {
  FlightRecorderConfig cfg;
  cfg.window = Duration::Millis(1);  // keep the last 1000 us
  FlightRecorder recorder(cfg);
  recorder.Instant(FlightComponent::kNet, "old", Us(100));
  recorder.Instant(FlightComponent::kNet, "edge", Us(2000));  // exactly at the horizon
  recorder.Instant(FlightComponent::kNet, "new", Us(2500));
  recorder.Freeze(Us(3000));
  ASSERT_EQ(recorder.frozen_window().size(), 2u);
  EXPECT_STREQ(recorder.frozen_window()[0].name, "edge");
  EXPECT_STREQ(recorder.frozen_window()[1].name, "new");
  EXPECT_EQ(recorder.frozen_at().ToMicros(), 3000);
}

TEST(FlightRecorderTest, FirstFreezeWins) {
  FlightRecorder recorder;
  recorder.Instant(FlightComponent::kFault, "first", Us(10));
  recorder.Freeze(Us(20));
  ASSERT_TRUE(recorder.frozen());
  ASSERT_EQ(recorder.frozen_window().size(), 1u);
  // Later records and later freezes must not disturb the first violation's window.
  recorder.Instant(FlightComponent::kFault, "second", Us(30));
  recorder.Freeze(Us(40));
  EXPECT_EQ(recorder.frozen_at().ToMicros(), 20);
  ASSERT_EQ(recorder.frozen_window().size(), 1u);
  EXPECT_STREQ(recorder.frozen_window()[0].name, "first");
}

TEST(FlightRecorderTest, SpanInstantCounterFieldsSurviveTheRing) {
  FlightRecorder recorder;
  recorder.Span(FlightComponent::kCpu, "seg", Us(100), Us(250), 7, 42, 43);
  recorder.Instant(FlightComponent::kMem, "fault", Us(300), 0, 5);
  recorder.Counter(FlightComponent::kSim, "pending_events", Us(400), 12);
  recorder.Freeze(Us(500));
  ASSERT_EQ(recorder.frozen_window().size(), 3u);
  const FlightRecord& span = recorder.frozen_window()[0];
  EXPECT_EQ(span.kind, static_cast<int32_t>(FlightKind::kSpan));
  EXPECT_EQ(span.ts_us, 100);
  EXPECT_EQ(span.dur_us, 150);
  EXPECT_EQ(span.flow_id, 7u);
  EXPECT_EQ(span.arg1, 42);
  EXPECT_EQ(span.arg2, 43);
  const FlightRecord& instant = recorder.frozen_window()[1];
  EXPECT_EQ(instant.kind, static_cast<int32_t>(FlightKind::kInstant));
  EXPECT_EQ(instant.dur_us, 0);
  EXPECT_EQ(instant.arg1, 5);
  const FlightRecord& counter = recorder.frozen_window()[2];
  EXPECT_EQ(counter.kind, static_cast<int32_t>(FlightKind::kCounter));
  EXPECT_EQ(counter.arg1, 12);
}

TEST(FlightRecorderTest, WindowJsonWithoutFreezeIsMetadataOnly) {
  FlightRecorder recorder;
  recorder.Instant(FlightComponent::kSim, "tick", Us(1));
  std::string json = recorder.WindowJson();
  // Process + nine component tracks, but no event records until Freeze selects them.
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"blame\""), std::string::npos);
  EXPECT_EQ(json.find("\"ph\":\"i\""), std::string::npos);
}

TEST(FlightRecorderTest, WindowJsonIsByteIdenticalAcrossIdenticalRuns) {
  auto drive = [](FlightRecorder& recorder) {
    for (int i = 0; i < 50; ++i) {
      recorder.Span(FlightComponent::kSession, "keystroke-batch", Us(i * 100),
                    Us(i * 100 + 40), static_cast<uint64_t>(i % 5 + 1), i, i * 2);
      recorder.Instant(FlightComponent::kMem, "fault", Us(i * 100 + 10));
      recorder.Counter(FlightComponent::kNet, "backlog", Us(i * 100 + 20), i * 7);
    }
    recorder.Freeze(Us(5000));
  };
  FlightRecorder a;
  FlightRecorder b;
  drive(a);
  drive(b);
  std::string ja = a.WindowJson();
  EXPECT_EQ(ja, b.WindowJson());
  // Flow arrows only appear for ids seen more than once, with begin/step/end phases.
  EXPECT_NE(ja.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(ja.find("\"ph\":\"f\",\"name\":\"interaction\""), std::string::npos);
  EXPECT_NE(ja.find("\"bp\":\"e\""), std::string::npos);
}

TEST(FlightRecorderTest, SingleOccurrenceFlowIdEmitsNoArrow) {
  FlightRecorder recorder;
  recorder.Span(FlightComponent::kBlame, "interaction", Us(0), Us(10), 99);
  recorder.Freeze(Us(100));
  std::string json = recorder.WindowJson();
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_EQ(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_EQ(json.find("\"ph\":\"f\""), std::string::npos);
}

}  // namespace
}  // namespace tcs
