#include "src/obs/trace.h"

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/experiments.h"
#include "src/core/parallel_sweep.h"
#include "src/obs/metrics.h"
#include "src/session/os_profile.h"

// Allocation counter for the null-sink test. Overriding the global operators in this
// binary lets the test assert that filtered-out trace calls perform zero allocations.
namespace {
std::atomic<size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace tcs {
namespace {

std::string ObservedTypingTrace(uint64_t seed, int sinks, uint32_t categories) {
  Tracer tracer(TracerConfig{categories});
  ObsConfig obs;
  obs.tracer = &tracer;
  RunTypingUnderLoad(OsProfile::Tse(), sinks, Duration::Seconds(5), seed,
                     /*processors=*/1, &obs);
  return tracer.ToJson();
}

TEST(TracerTest, TracksGroupByProcessInRegistrationOrder) {
  Tracer tracer;
  TraceTrack a = tracer.RegisterTrack("cpu", "cpu0");
  TraceTrack b = tracer.RegisterTrack("cpu", "sched");
  TraceTrack c = tracer.RegisterTrack("mem", "pager");
  EXPECT_EQ(a.pid, b.pid);
  EXPECT_NE(a.tid, b.tid);
  EXPECT_NE(a.pid, c.pid);
  EXPECT_EQ(tracer.track_count(), 3u);
}

TEST(TracerTest, CategoryFilteringDropsEventsInsideTheTracer) {
  Tracer tracer(TracerConfig{static_cast<uint32_t>(TraceCategory::kCpu)});
  TraceTrack track = tracer.RegisterTrack("cpu", "cpu0");
  tracer.Span(TraceCategory::kCpu, "seg", track, TimePoint::FromMicros(0),
              TimePoint::FromMicros(10));
  tracer.Instant(TraceCategory::kMem, "fault", track, TimePoint::FromMicros(5));
  tracer.Counter(TraceCategory::kSim, "pending", track, TimePoint::FromMicros(5), 3.0);
  EXPECT_EQ(tracer.event_count(), 1u);
  EXPECT_TRUE(tracer.Enabled(TraceCategory::kCpu));
  EXPECT_FALSE(tracer.Enabled(TraceCategory::kMem));
}

TEST(TracerTest, InternReturnsStablePointerPerString) {
  Tracer tracer;
  const char* a = tracer.Intern("editor");
  const char* b = tracer.Intern("editor");
  const char* c = tracer.Intern("hog");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_STREQ(a, "editor");
}

TEST(TracerTest, JsonCarriesTrackMetadataAndArgs) {
  Tracer tracer;
  TraceTrack track = tracer.RegisterTrack("net", "link");
  tracer.Span(TraceCategory::kNet, "frame", track, TimePoint::FromMicros(100),
              TimePoint::FromMicros(250), "bytes", 1500);
  std::string json = tracer.ToJson();
  EXPECT_NE(json.find("\"name\":\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"net\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":100"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":150"), std::string::npos);
  EXPECT_NE(json.find("\"bytes\":1500"), std::string::npos);
}

TEST(TracerNullSinkTest, FilteredEventsAllocateNothing) {
  Tracer tracer(TracerConfig{0});  // every category masked off
  TraceTrack track{1, 1};
  // Warm-up pass, in case any path initializes lazily.
  tracer.Span(TraceCategory::kCpu, "warm", track, TimePoint::FromMicros(0),
              TimePoint::FromMicros(1));
  size_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    TimePoint t = TimePoint::FromMicros(i);
    tracer.Span(TraceCategory::kCpu, "seg", track, t, t, "len", 1, "tid", 2);
    tracer.Instant(TraceCategory::kMem, "fault", track, t, "vpn", i);
    tracer.Counter(TraceCategory::kSim, "pending", track, t, 3.0);
  }
  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed), before);
  EXPECT_EQ(tracer.event_count(), 0u);
}

TEST(ObservedRunTest, TraceIsByteIdenticalAcrossReruns) {
  std::string first = ObservedTypingTrace(/*seed=*/7, /*sinks=*/2, kAllTraceCategories);
  std::string second = ObservedTypingTrace(/*seed=*/7, /*sinks=*/2, kAllTraceCategories);
  EXPECT_GT(first.size(), 1000u);
  EXPECT_EQ(first, second);
}

TEST(ObservedRunTest, TypingTraceCoversAllInstrumentedLayers) {
  std::string json = ObservedTypingTrace(/*seed=*/7, /*sinks=*/2, kAllTraceCategories);
  // The acceptance bar is spans from >= 4 layers; the typing experiment actually
  // exercises every category.
  for (const char* cat : {"\"cat\":\"sim\"", "\"cat\":\"cpu\"", "\"cat\":\"sched\"",
                          "\"cat\":\"mem\"", "\"cat\":\"net\"", "\"cat\":\"proto\"",
                          "\"cat\":\"session\""}) {
    EXPECT_NE(json.find(cat), std::string::npos) << "missing " << cat;
  }
}

TEST(ObservedRunTest, CategoryMaskRestrictsObservedRun) {
  std::string json = ObservedTypingTrace(
      /*seed=*/7, /*sinks=*/2,
      static_cast<uint32_t>(TraceCategory::kNet) |
          static_cast<uint32_t>(TraceCategory::kProto));
  EXPECT_NE(json.find("\"cat\":\"net\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"proto\""), std::string::npos);
  EXPECT_EQ(json.find("\"cat\":\"cpu\""), std::string::npos);
  EXPECT_EQ(json.find("\"cat\":\"sim\""), std::string::npos);
}

TEST(TracerTest, FlowIdsMintSequentiallyFromOne) {
  Tracer tracer;
  EXPECT_EQ(tracer.MintFlowId(), 1u);
  EXPECT_EQ(tracer.MintFlowId(), 2u);
  EXPECT_EQ(tracer.MintFlowId(), 3u);
}

TEST(TracerTest, FlowEventsSerializeWithIdAndEnclosingBinding) {
  Tracer tracer;
  TraceTrack a = tracer.RegisterTrack("blame", "net");
  TraceTrack b = tracer.RegisterTrack("blame", "cpu");
  uint64_t id = tracer.MintFlowId();
  tracer.FlowBegin(TraceCategory::kBlame, "interaction", a, TimePoint::FromMicros(10), id);
  tracer.FlowStep(TraceCategory::kBlame, "interaction", b, TimePoint::FromMicros(20), id);
  tracer.FlowEnd(TraceCategory::kBlame, "interaction", a, TimePoint::FromMicros(30), id);
  std::string json = tracer.ToJson();
  EXPECT_NE(json.find("\"ph\":\"s\",\"name\":\"interaction\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"t\",\"name\":\"interaction\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\",\"name\":\"interaction\""), std::string::npos);
  // All three points carry the flow id; the end binds to the enclosing slice.
  EXPECT_NE(json.find("\"id\":1,\"bp\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"blame\""), std::string::npos);
}

TEST(TracerTest, FlowEventsRespectCategoryFilter) {
  Tracer tracer(TracerConfig{static_cast<uint32_t>(TraceCategory::kCpu)});
  TraceTrack t = tracer.RegisterTrack("blame", "net");
  tracer.FlowBegin(TraceCategory::kBlame, "interaction", t, TimePoint::FromMicros(1), 1);
  tracer.FlowEnd(TraceCategory::kBlame, "interaction", t, TimePoint::FromMicros(2), 1);
  EXPECT_EQ(tracer.event_count(), 0u);
}

TEST(ObservedRunTest, SweepTracesInvariantUnderWorkerCount) {
  auto traced_config = [](int i) {
    return ObservedTypingTrace(SweepSeed(/*base_seed=*/11, i), /*sinks=*/i,
                               kAllTraceCategories);
  };
  std::vector<std::string> serial = ParallelSweep(1).Map(3, traced_config);
  std::vector<std::string> parallel = ParallelSweep(4).Map(3, traced_config);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "config " << i;
  }
}

}  // namespace
}  // namespace tcs
