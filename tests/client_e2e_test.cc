// Tests for the client device model and the end-to-end latency budget.

#include <gtest/gtest.h>

#include "src/client/thin_client.h"
#include "src/core/experiments.h"

namespace tcs {
namespace {

TEST(ThinClientTest, DecodeDelayScalesWithPayload) {
  ThinClientDevice client(ThinClientConfig::DesktopPc());
  Duration small = client.DecodeDelay(ProtocolKind::kRdp, Bytes::Of(100));
  Duration large = client.DecodeDelay(ProtocolKind::kRdp, Bytes::Of(100000));
  EXPECT_GT(large, small * 10);
}

TEST(ThinClientTest, SlowerDeviceIsSlower) {
  ThinClientDevice pc(ThinClientConfig::DesktopPc());
  ThinClientDevice pda(ThinClientConfig::Handheld());
  for (ProtocolKind kind : {ProtocolKind::kRdp, ProtocolKind::kX, ProtocolKind::kVnc}) {
    EXPECT_GT(pda.DecodeDelay(kind, Bytes::Of(10000)),
              pc.DecodeDelay(kind, Bytes::Of(10000)) * 3)
        << static_cast<int>(kind);
  }
}

TEST(ThinClientTest, CompressedProtocolsCostMoreCpuPerByte) {
  ThinClientDevice client;
  // Same wire bytes: RDP must decompress and replay; X is a raw copy.
  EXPECT_GT(client.DecodeDelay(ProtocolKind::kRdp, Bytes::Of(50000)),
            client.DecodeDelay(ProtocolKind::kX, Bytes::Of(50000)));
}

TEST(ThinClientTest, Deterministic) {
  ThinClientDevice a(ThinClientConfig::WinTerm());
  ThinClientDevice b(ThinClientConfig::WinTerm());
  EXPECT_EQ(a.DecodeDelay(ProtocolKind::kLbx, Bytes::Of(777)),
            b.DecodeDelay(ProtocolKind::kLbx, Bytes::Of(777)));
}

TEST(EndToEndTest, IdleBaselineIsFastAndCompletes) {
  EndToEndOptions opt;
  opt.duration = Duration::Seconds(10);
  EndToEndResult r = RunEndToEndLatency(OsProfile::LinuxX(), opt);
  EXPECT_GT(r.updates, 150);
  EXPECT_LT(r.total_ms, 10.0);
  EXPECT_GT(r.total_ms, 0.0);
  // The legs sum to the total.
  EXPECT_NEAR(r.input_net_ms + r.server_ms + r.display_net_ms + r.client_ms, r.total_ms,
              0.01);
}

TEST(EndToEndTest, CpuStressLandsInServerLeg) {
  EndToEndOptions idle;
  idle.duration = Duration::Seconds(10);
  EndToEndOptions loaded = idle;
  loaded.sinks = 10;
  EndToEndResult base = RunEndToEndLatency(OsProfile::Tse(), idle);
  EndToEndResult stressed = RunEndToEndLatency(OsProfile::Tse(), loaded);
  EXPECT_GT(stressed.server_ms, base.server_ms * 20);
  // The other legs barely move.
  EXPECT_LT(stressed.input_net_ms, base.input_net_ms + 1.0);
  EXPECT_LT(stressed.client_ms, base.client_ms + 1.0);
}

TEST(EndToEndTest, NetworkStressLandsInNetworkLegs) {
  EndToEndOptions idle;
  idle.duration = Duration::Seconds(10);
  EndToEndOptions congested = idle;
  congested.background_mbps = 9.0;
  EndToEndResult base = RunEndToEndLatency(OsProfile::LinuxX(), idle);
  EndToEndResult stressed = RunEndToEndLatency(OsProfile::LinuxX(), congested);
  EXPECT_GT(stressed.input_net_ms, base.input_net_ms * 5);
  EXPECT_GT(stressed.display_net_ms, base.display_net_ms * 5);
  EXPECT_LT(stressed.server_ms, base.server_ms + 2.0);
}

TEST(EndToEndTest, WeakClientLandsInClientLeg) {
  EndToEndOptions idle;
  idle.duration = Duration::Seconds(10);
  EndToEndOptions weak = idle;
  weak.client = ThinClientConfig::Handheld();
  EndToEndResult base = RunEndToEndLatency(OsProfile::Tse(), idle);
  EndToEndResult stressed = RunEndToEndLatency(OsProfile::Tse(), weak);
  EXPECT_GT(stressed.client_ms, base.client_ms * 10);
  EXPECT_NEAR(stressed.server_ms, base.server_ms, 1.0);
}

}  // namespace
}  // namespace tcs
