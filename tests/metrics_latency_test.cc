#include "src/metrics/latency.h"

#include <gtest/gtest.h>

namespace tcs {
namespace {

TEST(LatencyRecorderTest, BasicStats) {
  LatencyRecorder rec;
  rec.Record(Duration::Millis(10));
  rec.Record(Duration::Millis(30));
  rec.Record(Duration::Millis(20));
  EXPECT_EQ(rec.count(), 3);
  EXPECT_EQ(rec.Mean(), Duration::Millis(20));
  EXPECT_EQ(rec.Min(), Duration::Millis(10));
  EXPECT_EQ(rec.Max(), Duration::Millis(30));
}

TEST(LatencyRecorderTest, SingleSampleRoundTripsExactly) {
  LatencyRecorder rec;
  // 0.333 ms is not representable in binary floating point; a double-millisecond
  // round-trip truncates it to 332 µs. The integer accumulators keep it exact.
  rec.Record(Duration::Micros(333));
  EXPECT_EQ(rec.Mean(), Duration::Micros(333));
  EXPECT_EQ(rec.Min(), Duration::Micros(333));
  EXPECT_EQ(rec.Max(), Duration::Micros(333));
  EXPECT_EQ(rec.Jitter(), Duration::Zero());
}

TEST(LatencyRecorderTest, MeanRoundsToNearestMicrosecond) {
  LatencyRecorder rec;
  rec.Record(Duration::Micros(333));
  rec.Record(Duration::Micros(334));
  // (333 + 334) / 2 = 333.5, rounded up.
  EXPECT_EQ(rec.Mean(), Duration::Micros(334));
}

TEST(LatencyRecorderTest, JitterExactForIntegerSpread) {
  LatencyRecorder rec;
  rec.Record(Duration::Micros(100));
  rec.Record(Duration::Micros(104));
  // Population stddev of {100, 104} is exactly 2 µs.
  EXPECT_EQ(rec.Jitter(), Duration::Micros(2));
}

TEST(LatencyRecorderTest, PerceptionThresholdCounting) {
  LatencyRecorder rec;
  rec.Record(Duration::Millis(50));   // imperceptible
  rec.Record(Duration::Millis(99));   // imperceptible
  rec.Record(Duration::Millis(100));  // at threshold: perceptible
  rec.Record(Duration::Millis(500));  // perceptible
  EXPECT_EQ(rec.perceptible_count(), 2);
  EXPECT_DOUBLE_EQ(rec.PerceptibleFraction(), 0.5);
}

TEST(LatencyRecorderTest, MeanVsPerception) {
  LatencyRecorder rec;
  // The paper's TSE paging case: ~4 s average is ~40x the threshold.
  rec.Record(Duration::Millis(4000));
  EXPECT_DOUBLE_EQ(rec.MeanVsPerception(), 40.0);
}

TEST(LatencyRecorderTest, JitterIsStddev) {
  LatencyRecorder rec;
  for (int i = 0; i < 10; ++i) {
    rec.Record(Duration::Millis(50));
  }
  EXPECT_EQ(rec.Jitter(), Duration::Zero());
  rec.Record(Duration::Millis(500));
  EXPECT_GT(rec.Jitter(), Duration::Millis(50));
}

TEST(StallDetectorTest, OnTimeUpdatesProduceNoStalls) {
  StallDetector det;
  for (int i = 0; i <= 20; ++i) {
    det.OnUpdate(TimePoint::FromMicros(i * 50000));
  }
  EXPECT_EQ(det.updates(), 21);
  EXPECT_EQ(det.stall_count(), 0);
  EXPECT_EQ(det.AverageStallAllGaps(), Duration::Zero());
}

TEST(StallDetectorTest, LateUpdateMeasuredAsStall) {
  StallDetector det;
  det.OnUpdate(TimePoint::FromMicros(0));
  det.OnUpdate(TimePoint::FromMicros(50000));   // on time
  det.OnUpdate(TimePoint::FromMicros(350000));  // 300 ms gap: 250 ms stall
  EXPECT_EQ(det.stall_count(), 1);
  EXPECT_EQ(det.AverageStall(), Duration::Millis(250));
  EXPECT_EQ(det.MaxStall(), Duration::Millis(250));
  // Average over all gaps: (0 + 250) / 2.
  EXPECT_EQ(det.AverageStallAllGaps(), Duration::Millis(125));
}

TEST(StallDetectorTest, EarlyUpdateClampsToZero) {
  StallDetector det;
  det.OnUpdate(TimePoint::FromMicros(0));
  det.OnUpdate(TimePoint::FromMicros(20000));  // 30 ms early: not a negative stall
  EXPECT_EQ(det.stall_count(), 0);
  EXPECT_EQ(det.AverageStallAllGaps(), Duration::Zero());
}

TEST(StallDetectorTest, JitterZeroWhenConsistent) {
  StallDetector det;
  for (int i = 0; i < 10; ++i) {
    det.OnUpdate(TimePoint::FromMicros(i * 100000));  // consistently 50 ms late
  }
  EXPECT_EQ(det.Jitter(), Duration::Zero());
  EXPECT_EQ(det.AverageStallAllGaps(), Duration::Millis(50));
}

TEST(StallDetectorTest, CustomExpectedPeriod) {
  StallDetector det(Duration::Millis(100));
  det.OnUpdate(TimePoint::FromMicros(0));
  det.OnUpdate(TimePoint::FromMicros(100000));
  EXPECT_EQ(det.stall_count(), 0);
}

TEST(LatencyRecorderTest, PercentileIsExactToTheMicrosecond) {
  LatencyRecorder rec;
  rec.Record(Duration::Micros(333));
  EXPECT_EQ(rec.Percentile(0.50), Duration::Micros(333));
  EXPECT_EQ(rec.Percentile(0.99), Duration::Micros(333));
  EXPECT_EQ(rec.PercentileMs(0.50), 0.333);
}

TEST(LatencyRecorderTest, NearestRankPercentileReturnsObservedSamples) {
  LatencyRecorder rec;
  // Out of order on purpose: Percentile sorts lazily.
  for (int64_t us : {900, 100, 500, 300, 700}) {
    rec.Record(Duration::Micros(us));
  }
  // Nearest rank over n=5: rank = ceil(q*n).
  EXPECT_EQ(rec.Percentile(0.20), Duration::Micros(100));
  EXPECT_EQ(rec.Percentile(0.50), Duration::Micros(500));
  EXPECT_EQ(rec.Percentile(0.60), Duration::Micros(500));
  EXPECT_EQ(rec.Percentile(0.61), Duration::Micros(700));
  EXPECT_EQ(rec.Percentile(0.99), Duration::Micros(900));
  EXPECT_EQ(rec.Percentile(1.00), Duration::Micros(900));
  // Recording after a percentile query re-sorts on the next query.
  rec.Record(Duration::Micros(1));
  EXPECT_EQ(rec.Percentile(0.01), Duration::Micros(1));
}

TEST(LatencyRecorderTest, PercentileOfEmptyRecorderIsZero) {
  LatencyRecorder rec;
  EXPECT_EQ(rec.Percentile(0.99), Duration::Zero());
  EXPECT_EQ(rec.PercentileMs(0.99), 0.0);
}

TEST(LatencyRecorderTest, SamplesKeepExactMicroseconds) {
  LatencyRecorder rec;
  rec.Record(Duration::Micros(1001));
  rec.Record(Duration::Micros(999));
  ASSERT_EQ(rec.samples_us().size(), 2u);
  EXPECT_EQ(rec.samples_us()[0], 1001);
  EXPECT_EQ(rec.samples_us()[1], 999);
  EXPECT_EQ(rec.Mean(), Duration::Micros(1000));
}

}  // namespace
}  // namespace tcs
