// Property tests for cross-session page sharing (§5.1.1) and in-flight page-in
// coalescing. Randomized over seeds and session counts: shared text must be resident
// once no matter how many sessions map it, physical memory must never be exceeded,
// an evicted shared page must stall every mapping session exactly once (one disk I/O),
// and logout must return the resident count to its pre-login value.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "src/mem/pager.h"
#include "src/session/os_profile.h"
#include "src/session/server.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"

namespace tcs {
namespace {

class SharedPagerProperty : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SharedPagerProperty,
                         ::testing::Values<uint64_t>(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

DiskConfig FastDeterministicDisk() {
  DiskConfig cfg;
  cfg.positioning_mean = Duration::Millis(4);
  cfg.positioning_stddev = Duration::Zero();
  cfg.positioning_min = Duration::Millis(1);
  return cfg;
}

struct PagerFixture {
  explicit PagerFixture(PagerConfig cfg = {})
      : disk(sim, Rng(1), FastDeterministicDisk()), pager(sim, disk, cfg) {}

  Simulator sim;
  Disk disk;
  Pager pager;
};

PagerConfig SmallMemory(size_t frames) {
  PagerConfig cfg;
  cfg.total_frames = frames;
  return cfg;
}

// Pages a login pays once per server for a profile's shared text, mirroring the
// server's per-process rounding.
size_t SharedTextPages(const OsProfile& profile) {
  size_t pages = 0;
  for (const auto& proc : profile.login_processes) {
    if (proc.shared_text.count() > 0) {
      pages += static_cast<size_t>(
          std::max<int64_t>(1, (proc.shared_text.count() + 4095) / 4096));
    }
  }
  return pages;
}

// --- Physical memory is a hard ceiling: no random mix of private and shared demand
// can push the resident count past the frame pool.
TEST_P(SharedPagerProperty, ResidentFramesNeverExceedPhysicalMemory) {
  Rng rng(GetParam());
  PagerFixture f(SmallMemory(64));
  std::vector<AddressSpace*> spaces;
  std::vector<std::string> keys;
  for (int step = 0; step < 200; ++step) {
    double dice = rng.NextDouble();
    if (dice < 0.2) {
      std::string key = "seg:" + std::to_string(rng.NextInt(0, 5));
      SharedSegment seg = f.pager.AcquireShared(key, rng.NextBool(0.5));
      keys.push_back(key);
      spaces.push_back(seg.space);
    } else if (dice < 0.3 && !keys.empty()) {
      size_t pick = static_cast<size_t>(rng.NextBelow(keys.size()));
      f.pager.ReleaseShared(keys[pick]);
      keys.erase(keys.begin() + static_cast<long>(pick));
      spaces.clear();  // conservatively drop stale pointers; reacquire below
      for (const std::string& key : keys) {
        spaces.push_back(f.pager.AcquireShared(key, false).space);
        f.pager.ReleaseShared(key);  // keep refcounts balanced with `keys`
      }
    } else if (dice < 0.5) {
      spaces.push_back(
          f.pager.CreateAddressSpace("p" + std::to_string(step), rng.NextBool(0.3)));
    } else if (!spaces.empty()) {
      AddressSpace* as = spaces[static_cast<size_t>(rng.NextBelow(spaces.size()))];
      uint64_t first = static_cast<uint64_t>(rng.NextInt(0, 100));
      size_t count = static_cast<size_t>(rng.NextInt(1, 40));
      f.pager.AccessRange(*as, first, count, rng.NextBool(0.3), nullptr);
    }
    ASSERT_LE(f.pager.frames_used(), f.pager.total_frames());
    if (step % 20 == 0) {
      f.sim.Run();
      ASSERT_LE(f.pager.frames_used(), f.pager.total_frames());
    }
  }
  f.sim.Run();
  EXPECT_LE(f.pager.frames_used(), f.pager.total_frames());
}

// --- §5.1.1: shared text is resident once however many sessions log in. Every login
// after the first pays exactly the same private bill, and the difference between the
// first and later bills is exactly the profile's shared text.
TEST_P(SharedPagerProperty, SharedTextResidentOnceAcrossSessions) {
  Rng rng(GetParam());
  int sessions = 2 + static_cast<int>(rng.NextBelow(4));  // 2..5
  Simulator sim;
  Server server(sim, OsProfile::Tse());
  size_t baseline = server.pager().frames_used();
  std::vector<size_t> deltas;
  size_t before = baseline;
  for (int i = 0; i < sessions; ++i) {
    server.Login();
    size_t after = server.pager().frames_used();
    deltas.push_back(after - before);
    before = after;
  }
  size_t shared_pages = SharedTextPages(server.profile());
  ASSERT_GT(shared_pages, 0u);
  // First login pays shared text once; every later login pays private-only.
  EXPECT_EQ(deltas.front() - deltas[1], shared_pages);
  for (size_t i = 2; i < deltas.size(); ++i) {
    EXPECT_EQ(deltas[i], deltas[1]);
  }
  // The pool holds one shared segment per distinct shared process, not per session.
  size_t shared_procs = 0;
  for (const auto& proc : server.profile().login_processes) {
    if (proc.shared_text.count() > 0) {
      ++shared_procs;
    }
  }
  EXPECT_EQ(server.pager().shared_segments(), shared_procs);
  EXPECT_EQ(server.pager().shared_attaches(),
            static_cast<int64_t>(shared_procs) * (sessions - 1));
}

// --- Evicting a shared page makes every mapping session stall exactly once: the first
// toucher issues the one disk read, later touchers coalesce onto it, and everyone
// resumes at the same completion instant.
TEST_P(SharedPagerProperty, EvictedSharedPageStallsEveryMapperExactlyOnce) {
  Rng rng(GetParam());
  int mappers = 2 + static_cast<int>(rng.NextBelow(5));  // 2..6
  PagerFixture f(SmallMemory(64));
  SharedSegment seg = f.pager.AcquireShared("text:editor", true);
  ASSERT_TRUE(seg.created);
  f.pager.Prefault(*seg.space, 0, 1);
  f.pager.MarkSwappedOut(*seg.space, 0, 1);  // the page was evicted while all slept

  int64_t reads_before = f.disk.reads();
  std::vector<TimePoint> resumed(static_cast<size_t>(mappers), TimePoint::Infinite());
  std::vector<int> completions(static_cast<size_t>(mappers), 0);
  for (int m = 0; m < mappers; ++m) {
    f.pager.Access(*seg.space, 0, false, [&, m] {
      ++completions[static_cast<size_t>(m)];
      resumed[static_cast<size_t>(m)] = f.sim.Now();
    });
  }
  f.sim.Run();
  EXPECT_EQ(f.disk.reads() - reads_before, 1);  // one I/O, not one per session
  EXPECT_EQ(f.pager.coalesced_waits(), mappers - 1);
  for (int m = 0; m < mappers; ++m) {
    EXPECT_EQ(completions[static_cast<size_t>(m)], 1);  // exactly one stall each
    EXPECT_GT(resumed[static_cast<size_t>(m)], TimePoint::Zero());
    EXPECT_EQ(resumed[static_cast<size_t>(m)], resumed[0]);  // same completion
  }
}

// --- Logout is a clean inverse of login: resident frames return to each intermediate
// level in reverse, shared text is freed only with the last session, and the pool ends
// exactly where it started.
TEST_P(SharedPagerProperty, LogoutReturnsResidentFramesToPreLoginLevel) {
  Rng rng(GetParam());
  int sessions = 1 + static_cast<int>(rng.NextBelow(3));  // 1..3
  Simulator sim;
  Server server(sim, OsProfile::Tse());
  size_t baseline = server.pager().frames_used();
  std::vector<Session*> logged_in;
  std::vector<size_t> levels{baseline};
  for (int i = 0; i < sessions; ++i) {
    logged_in.push_back(&server.Login());
    levels.push_back(server.pager().frames_used());
  }
  sim.RunFor(Duration::Seconds(1));  // let setup traffic drain; no paging activity
  for (int i = sessions - 1; i >= 0; --i) {
    server.Logout(*logged_in[static_cast<size_t>(i)]);
    sim.RunFor(Duration::Millis(10));  // flush zero-delay waiter completions
    EXPECT_EQ(server.pager().frames_used(), levels[static_cast<size_t>(i)]);
  }
  EXPECT_EQ(server.pager().frames_used(), baseline);
  EXPECT_EQ(server.pager().shared_segments(), 0u);
}

// --- Refcounted segments: the live-segment gauge always matches a model refcount map,
// and releasing every reference returns the pool to empty.
TEST_P(SharedPagerProperty, SharedSegmentRefcountsMatchModel) {
  Rng rng(GetParam());
  PagerFixture f(SmallMemory(256));
  std::map<std::string, int> model;
  for (int step = 0; step < 300; ++step) {
    std::string key = "seg:" + std::to_string(rng.NextInt(0, 8));
    auto it = model.find(key);
    bool release = it != model.end() && rng.NextBool(0.5);
    if (release) {
      f.pager.ReleaseShared(key);
      if (--it->second == 0) {
        model.erase(it);
      }
    } else {
      SharedSegment seg = f.pager.AcquireShared(key, false);
      EXPECT_EQ(seg.created, it == model.end());
      if (seg.created) {
        f.pager.Prefault(*seg.space, 0, static_cast<size_t>(rng.NextInt(1, 8)));
      }
      ++model[key];
    }
    ASSERT_EQ(f.pager.shared_segments(), model.size());
  }
  for (auto& [key, refs] : model) {
    for (int i = 0; i < refs; ++i) {
      f.pager.ReleaseShared(key);
    }
  }
  f.sim.Run();
  EXPECT_EQ(f.pager.shared_segments(), 0u);
  EXPECT_EQ(f.pager.frames_used(), 0u);
}

}  // namespace
}  // namespace tcs
