#include "src/util/flags.h"

#include <gtest/gtest.h>

namespace tcs {
namespace {

FlagSet Make(std::vector<const char*> argv, std::vector<std::string> known) {
  argv.insert(argv.begin(), "prog");
  return FlagSet(static_cast<int>(argv.size()), argv.data(), std::move(known));
}

TEST(FlagSetTest, EqualsAndSpaceForms) {
  FlagSet f = Make({"--os=tse", "--sinks", "10"}, {"os", "sinks"});
  ASSERT_TRUE(f.ok()) << f.error();
  EXPECT_EQ(f.GetString("os"), "tse");
  EXPECT_EQ(f.GetInt("sinks"), 10);
}

TEST(FlagSetTest, BareBooleanFlag) {
  FlagSet f = Make({"--protect", "--csv=false"}, {"protect", "csv"});
  ASSERT_TRUE(f.ok());
  EXPECT_TRUE(f.GetBool("protect"));
  EXPECT_FALSE(f.GetBool("csv"));
  EXPECT_FALSE(f.GetBool("absent"));
  EXPECT_TRUE(f.GetBool("absent", true));
}

TEST(FlagSetTest, PositionalArguments) {
  FlagSet f = Make({"replay", "trace.txt", "--protocol=x"}, {"protocol"});
  ASSERT_TRUE(f.ok());
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "replay");
  EXPECT_EQ(f.positional()[1], "trace.txt");
}

TEST(FlagSetTest, UnknownFlagIsError) {
  FlagSet f = Make({"--bogus=1"}, {"os"});
  EXPECT_FALSE(f.ok());
  EXPECT_NE(f.error().find("unknown flag --bogus"), std::string::npos);
}

TEST(FlagSetTest, DuplicateFlagIsError) {
  FlagSet f = Make({"--os=a", "--os=b"}, {"os"});
  EXPECT_FALSE(f.ok());
  EXPECT_NE(f.error().find("twice"), std::string::npos);
}

TEST(FlagSetTest, MalformedIntReported) {
  FlagSet f = Make({"--sinks=ten"}, {"sinks"});
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f.GetInt("sinks", 7), 7);
  EXPECT_FALSE(f.ok());
}

TEST(FlagSetTest, MalformedDoubleReported) {
  FlagSet f = Make({"--mbps=fast"}, {"mbps"});
  f.GetDouble("mbps");
  EXPECT_FALSE(f.ok());
}

TEST(FlagSetTest, MalformedBoolReported) {
  FlagSet f = Make({"--csv=maybe"}, {"csv"});
  f.GetBool("csv");
  EXPECT_FALSE(f.ok());
}

TEST(FlagSetTest, DefaultsWhenAbsent) {
  FlagSet f = Make({}, {"os"});
  EXPECT_EQ(f.GetString("os", "linux"), "linux");
  EXPECT_EQ(f.GetInt("sinks", 3), 3);
  EXPECT_DOUBLE_EQ(f.GetDouble("mbps", 1.5), 1.5);
  EXPECT_TRUE(f.ok());
}

TEST(FlagSetTest, FlagValueStartingWithDashesTreatedAsFlag) {
  // `--os --csv`: --os becomes bare-boolean "true" and --csv is its own flag.
  FlagSet f = Make({"--os", "--csv"}, {"os", "csv"});
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f.GetString("os"), "true");
  EXPECT_TRUE(f.GetBool("csv"));
}

}  // namespace
}  // namespace tcs
