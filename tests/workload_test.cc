#include <gtest/gtest.h>

#include <memory>

#include "src/cpu/linux_scheduler.h"
#include "src/proto/rdp_protocol.h"
#include "src/proto/x_protocol.h"
#include "src/workload/animation.h"
#include "src/workload/app_script.h"
#include "src/workload/memory_hog.h"
#include "src/workload/sink.h"
#include "src/workload/typist.h"
#include "src/workload/webpage.h"

namespace tcs {
namespace {

struct ProtoFixture {
  ProtoFixture()
      : link(sim),
        display(link, HeaderModel::TcpIp()),
        input(link, HeaderModel::TcpIp()),
        tap(Duration::Millis(100)) {}

  Simulator sim;
  Link link;
  MessageSender display;
  MessageSender input;
  ProtoTap tap;
};

TEST(SinkTest, SinkKeepsCpuBusyForever) {
  Simulator sim;
  CpuConfig cfg;
  cfg.context_switch_cost = Duration::Zero();
  Cpu cpu(sim, std::make_unique<LinuxScheduler>(), cfg);
  SinkProcess sink(cpu, 0);
  sim.RunUntil(TimePoint::Zero() + Duration::Seconds(10));
  EXPECT_FALSE(cpu.IsIdle());
  EXPECT_EQ(cpu.busy_time(), Duration::Seconds(10));
  EXPECT_EQ(sink.thread()->state(), ThreadState::kRunning);
}

TEST(SinkTest, StartSinksIncreasesQueueLength) {
  Simulator sim;
  Cpu cpu(sim, std::make_unique<LinuxScheduler>());
  StartSinks(cpu, 5, 0);
  // One runs, four queue.
  EXPECT_EQ(cpu.scheduler().ReadyCount(), 4u);
}

TEST(TypistTest, FiresAtTwentyHertz) {
  Simulator sim;
  int strokes = 0;
  Typist typist(sim, [&] { ++strokes; });
  typist.Start();
  sim.RunUntil(TimePoint::Zero() + Duration::Seconds(1));
  typist.Stop();
  EXPECT_EQ(strokes, 21);  // t = 0, 50ms, ..., 1000ms inclusive
  EXPECT_EQ(typist.keystrokes(), 21);
}

TEST(MemoryHogTest, StreamsAndWraps) {
  Simulator sim;
  Disk disk(sim, Rng(1));
  Pager pager(sim, disk, PagerConfig{.total_frames = 64});
  MemoryHogConfig cfg;
  cfg.region_pages = 32;
  cfg.touch_cpu = Duration::Micros(100);
  MemoryHog hog(sim, pager, cfg);
  hog.Start();
  sim.RunUntil(TimePoint::Zero() + Duration::Millis(10));
  hog.Stop();
  // 100 us per zero-fill touch: ~100 touches in 10 ms, so it wrapped the 32-page region.
  EXPECT_GT(hog.pages_touched(), 64);
  EXPECT_EQ(hog.address_space()->resident_pages(), 32u);
}

TEST(MemoryHogTest, EvictsOlderPagesWhenRegionExceedsMemory) {
  Simulator sim;
  Disk disk(sim, Rng(1));
  Pager pager(sim, disk, PagerConfig{.total_frames = 50});
  AddressSpace* victim = pager.CreateAddressSpace("victim", true);
  pager.Prefault(*victim, 0, 20);
  MemoryHogConfig cfg;
  cfg.region_pages = 40;  // 20 free + steals 10
  MemoryHog hog(sim, pager, cfg);
  hog.Start();
  sim.RunUntil(TimePoint::Zero() + Duration::Seconds(2));
  hog.Stop();
  EXPECT_EQ(victim->resident_pages(), 10u);
}

TEST(AnimationTest, LoopsThroughFrames) {
  ProtoFixture f;
  auto rdp = std::make_unique<RdpProtocol>(f.sim, f.display, f.input, &f.tap, Rng(1));
  AnimationConfig cfg;
  cfg.frame_count = 4;
  cfg.frame_period = Duration::Millis(100);
  Animation anim(f.sim, *rdp, cfg);
  anim.Start();
  f.sim.RunUntil(TimePoint::Zero() + Duration::Millis(1000));
  anim.Stop();
  EXPECT_EQ(anim.frames_drawn(), 11);  // t = 0, 100, ..., 1000
  // 4 distinct frames: 4 misses then hits.
  EXPECT_EQ(rdp->bitmap_cache().misses(), 4);
  EXPECT_EQ(rdp->bitmap_cache().hits(), 7);
}

TEST(AnimationTest, NonLoopingStopsAfterOnePass) {
  ProtoFixture f;
  auto rdp = std::make_unique<RdpProtocol>(f.sim, f.display, f.input, &f.tap, Rng(1));
  AnimationConfig cfg;
  cfg.frame_count = 5;
  cfg.frame_period = Duration::Millis(10);
  cfg.loop = false;
  Animation anim(f.sim, *rdp, cfg);
  anim.Start();
  f.sim.RunUntil(TimePoint::Zero() + Duration::Seconds(1));
  EXPECT_EQ(anim.frames_drawn(), 5);
  EXPECT_FALSE(anim.IsRunning());
}

TEST(AnimationTest, FrameHashesDistinctAcrossAnimations) {
  ProtoFixture f;
  auto rdp = std::make_unique<RdpProtocol>(f.sim, f.display, f.input, &f.tap, Rng(1));
  AnimationConfig a;
  a.id = 1;
  AnimationConfig b;
  b.id = 2;
  Animation anim_a(f.sim, *rdp, a);
  Animation anim_b(f.sim, *rdp, b);
  for (const auto& frame_a : anim_a.frames()) {
    for (const auto& frame_b : anim_b.frames()) {
      EXPECT_NE(frame_a.content_hash, frame_b.content_hash);
    }
  }
}

TEST(MarqueeTest, StripSetSizeMatchesConfig) {
  ProtoFixture f;
  auto rdp = std::make_unique<RdpProtocol>(f.sim, f.display, f.input, &f.tap, Rng(1));
  MarqueeConfig cfg;
  Marquee marquee(f.sim, *rdp, cfg);
  // 95 strips of 468x40 at 0.8 compression: just under the 1.5 MB cache alone.
  EXPECT_LT(marquee.StripSetBytes(), Bytes::Of(3 * 512 * 1024));
  EXPECT_GT(marquee.StripSetBytes(), Bytes::MiB(1));
}

TEST(WebPageTest, CombinedElementsOverflowCache) {
  ProtoFixture f;
  auto rdp = std::make_unique<RdpProtocol>(f.sim, f.display, f.input, &f.tap, Rng(1));
  WebPage page(f.sim, *rdp, WebPageConfig{});
  // Banner frame set + marquee strip set together exceed the 1.5 MB cache.
  Bytes banner_bytes = Bytes::Zero();
  for (const auto& frame : page.banner()->frames()) {
    banner_bytes += frame.compressed_bytes;
  }
  Bytes total = banner_bytes + page.marquee()->StripSetBytes();
  EXPECT_GT(total, Bytes::Of(3 * 512 * 1024));
}

TEST(AppScriptTest, DeterministicForSameSeed) {
  AppScript a = AppScript::WordProcessor(Rng(7), 100);
  AppScript b = AppScript::WordProcessor(Rng(7), 100);
  EXPECT_EQ(a.TotalInputEvents(), b.TotalInputEvents());
  EXPECT_EQ(a.TotalDrawCommands(), b.TotalDrawCommands());
  EXPECT_EQ(a.TotalDuration(), b.TotalDuration());
}

TEST(AppScriptTest, DifferentSeedsDiffer) {
  AppScript a = AppScript::WordProcessor(Rng(7), 200);
  AppScript b = AppScript::WordProcessor(Rng(8), 200);
  EXPECT_NE(a.TotalInputEvents(), b.TotalInputEvents());
}

TEST(AppScriptTest, AllThreeAppsProduceWork) {
  for (auto script : {AppScript::WordProcessor(Rng(1), 50),
                      AppScript::PhotoEditor(Rng(1), 50),
                      AppScript::ControlPanel(Rng(1), 50)}) {
    EXPECT_EQ(script.steps().size(), 50u) << script.name();
    EXPECT_GT(script.TotalInputEvents(), 0u) << script.name();
    EXPECT_GT(script.TotalDrawCommands(), 50u) << script.name();
    EXPECT_GT(script.TotalDuration(), Duration::Seconds(10)) << script.name();
  }
}

TEST(AppScriptTest, ReplayDrivesProtocol) {
  ProtoFixture f;
  auto x = std::make_unique<XProtocol>(f.sim, f.display, f.input, &f.tap, Rng(2));
  AppScript script = AppScript::ControlPanel(Rng(3), 50);
  bool done = false;
  script.Replay(f.sim, *x, [&] { done = true; });
  f.sim.Run();
  EXPECT_TRUE(done);
  EXPECT_GT(f.tap.messages(Channel::kDisplay), 0);
  EXPECT_GT(f.tap.messages(Channel::kInput), 0);
  EXPECT_EQ(f.sim.Now(), TimePoint::Zero() + script.TotalDuration());
}

}  // namespace
}  // namespace tcs
