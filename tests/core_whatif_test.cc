// Counterfactual what-if analysis: PredictAdjustedTotalUs arithmetic on a hand-built
// record (exact expected values per component, including the RTT clamp), RunWhatIf
// end-to-end sanity on an LTE cell, byte-identical determinism of the whatif block
// across reruns, and the WanOptions virtual-hardware gates.

#include <string>

#include <gtest/gtest.h>

#include "src/core/experiments.h"
#include "src/core/report.h"
#include "src/obs/critical_path.h"
#include "src/session/os_profile.h"

namespace tcs {
namespace {

constexpr int Stage(AttrStage s) { return static_cast<int>(s); }
constexpr int Net(NetSubStage s) { return static_cast<int>(s); }

// A record with round numbers so the expected totals are exact under either
// per-stage or summed rescaling: stages sum to 18300, net sub-stages to the
// display-net stage's 10000.
InteractionRecord MakeRecord() {
  InteractionRecord rec;
  rec.sent_us = 0;
  rec.painted_us = 18'300;
  rec.stage_us[Stage(AttrStage::kInputNet)] = 1'000;
  rec.stage_us[Stage(AttrStage::kRetransmit)] = 500;
  rec.stage_us[Stage(AttrStage::kSchedWait)] = 2'000;
  rec.stage_us[Stage(AttrStage::kCpuService)] = 3'000;
  rec.stage_us[Stage(AttrStage::kMemStall)] = 400;
  rec.stage_us[Stage(AttrStage::kProtoEncode)] = 600;
  rec.stage_us[Stage(AttrStage::kDisplayNet)] = 10'000;
  rec.stage_us[Stage(AttrStage::kClientDecode)] = 800;
  rec.net_us[Net(NetSubStage::kQueueing)] = 4'000;
  rec.net_us[Net(NetSubStage::kRetransmitWait)] = 2'000;
  rec.net_us[Net(NetSubStage::kSerialization)] = 1'500;
  rec.net_us[Net(NetSubStage::kPropagation)] = 2'000;
  rec.net_us[Net(NetSubStage::kJitter)] = 500;
  return rec;
}

TEST(WhatIfTest, PredictAdjustedTotalScalesOnlyTheAffectedSegments) {
  InteractionRecord rec = MakeRecord();
  ASSERT_EQ(rec.StageSum(), rec.total_us());
  ASSERT_EQ(rec.NetSum(), rec.stage_us[Stage(AttrStage::kDisplayNet)]);

  WhatIfAdjustment adj;
  adj.speedup = 2.0;

  // Link x2 halves queueing + retransmit wait + serialization (7500 -> 3750);
  // propagation and jitter are delay, not rate, and stay put.
  adj.component = WhatIfAdjustment::Component::kLink;
  EXPECT_EQ(PredictAdjustedTotalUs(rec, adj), 18'300 - 7'500 + 3'750);

  // CPU x2 halves cpu-service + proto-encode (3600 -> 1800); run-queue wait is a
  // second-order effect and is deliberately left unscaled.
  adj.component = WhatIfAdjustment::Component::kCpu;
  EXPECT_EQ(PredictAdjustedTotalUs(rec, adj), 18'300 - 3'600 + 1'800);

  // Disk x2 halves the mem-stall interval only.
  adj.component = WhatIfAdjustment::Component::kDisk;
  EXPECT_EQ(PredictAdjustedTotalUs(rec, adj), 18'300 - 400 + 200);

  // Speedup 1.0 is the identity for every rate component.
  adj.speedup = 1.0;
  for (auto c : {WhatIfAdjustment::Component::kLink, WhatIfAdjustment::Component::kCpu,
                 WhatIfAdjustment::Component::kDisk}) {
    adj.component = c;
    EXPECT_EQ(PredictAdjustedTotalUs(rec, adj), rec.total_us());
  }
}

TEST(WhatIfTest, RttReductionSplitsAcrossLegsAndClampsAtZero) {
  InteractionRecord rec = MakeRecord();
  WhatIfAdjustment adj;
  adj.component = WhatIfAdjustment::Component::kRtt;

  // -3 ms RTT: 1500 comes off display-leg propagation (2000 -> 500), but the input
  // leg only has 1000 to give, so that half clamps.
  adj.rtt_delta_us = 3'000;
  EXPECT_EQ(PredictAdjustedTotalUs(rec, adj), 18'300 - 1'500 - 1'000);

  // An absurd reduction can at most zero both legs (propagation 2000 + input 1000);
  // the other stages are untouched.
  adj.rtt_delta_us = 100'000;
  EXPECT_EQ(PredictAdjustedTotalUs(rec, adj), 18'300 - 2'000 - 1'000);

  adj.rtt_delta_us = 0;
  EXPECT_EQ(PredictAdjustedTotalUs(rec, adj), rec.total_us());
}

TEST(WhatIfTest, ComponentNamesAreStable) {
  EXPECT_STREQ(WhatIfComponentName(WhatIfAdjustment::Component::kLink), "link");
  EXPECT_STREQ(WhatIfComponentName(WhatIfAdjustment::Component::kCpu), "cpu");
  EXPECT_STREQ(WhatIfComponentName(WhatIfAdjustment::Component::kDisk), "disk");
  EXPECT_STREQ(WhatIfComponentName(WhatIfAdjustment::Component::kRtt), "rtt");
}

WhatIfOptions SmallLteCell(WhatIfAdjustment::Component component) {
  WhatIfOptions opt;
  opt.wan.profile = WanProfileByName("lte");
  opt.wan.users = 2;
  opt.wan.duration = Duration::Seconds(4);
  opt.wan.seed = 1;
  opt.adjust.component = component;
  opt.adjust.speedup = 2.0;
  opt.adjust.rtt_delta_us = 40'000;
  return opt;
}

TEST(WhatIfTest, LinkSpeedupOnLteIsSaneAndInternallyConsistent) {
  WhatIfResult r =
      RunWhatIf(OsProfile::Tse(), SmallLteCell(WhatIfAdjustment::Component::kLink));
  EXPECT_EQ(r.component, "link");
  EXPECT_EQ(r.profile, "lte");
  EXPECT_GT(r.interactions, 0);
  // The tentpole invariant held for every baseline interaction the prediction replayed.
  EXPECT_EQ(r.critical_path_mismatches, 0);
  EXPECT_GT(r.baseline_p99_us, 0);
  // Speeding up the bottleneck link can only help the prediction (affected segments
  // scale by 1/2, nothing grows).
  EXPECT_LE(r.predicted_p99_us, r.baseline_p99_us);
  EXPECT_EQ(r.predicted_delta_us, r.baseline_p99_us - r.predicted_p99_us);
  EXPECT_EQ(r.achieved_delta_us, r.baseline_p99_us - r.achieved_p99_us);
  // Both arms ran with attribution on and exact accounting.
  EXPECT_EQ(r.baseline.blame.accounting_mismatches, 0);
  EXPECT_EQ(r.adjusted.blame.accounting_mismatches, 0);
  EXPECT_EQ(r.baseline.blame.net_mismatches, 0);
}

TEST(WhatIfTest, WhatIfBlockIsByteIdenticalAcrossReruns) {
  WhatIfOptions opt = SmallLteCell(WhatIfAdjustment::Component::kRtt);
  WhatIfResult a = RunWhatIf(OsProfile::Tse(), opt);
  WhatIfResult b = RunWhatIf(OsProfile::Tse(), opt);
  EXPECT_EQ(WhatIfBlockJson(a), WhatIfBlockJson(b));
  EXPECT_FALSE(WhatIfBlockJson(a).empty());
  // The full archival report carries the block plus both arms.
  std::string full = ToJson(a);
  EXPECT_NE(full.find("\"whatif\""), std::string::npos);
  EXPECT_NE(full.find("\"baseline\""), std::string::npos);
  EXPECT_NE(full.find("\"adjusted\""), std::string::npos);
  EXPECT_NE(full.find("\"rtt\""), std::string::npos);
}

// The virtual-hardware knobs on WanOptions: cpu_speed really re-simulates (the CPU
// stage shrinks), and the default 1.0 path is the stock simulation.
TEST(WhatIfTest, VirtualCpuSpeedShrinksCpuServiceInResimulation) {
  auto cpu_total = [](double cpu_speed) {
    WanOptions opt;
    opt.profile = WanProfileByName("lte");
    opt.users = 2;
    opt.duration = Duration::Seconds(4);
    opt.seed = 1;
    opt.cpu_speed = cpu_speed;
    AttributionConfig cfg;
    LatencyAttribution attribution(cfg);
    ObsConfig obs;
    obs.attribution = &attribution;
    RunWanPoint(OsProfile::Tse(), opt, &obs);
    AttributionResult r = attribution.Collect();
    for (const StageSummary& s : r.stages) {
      if (s.stage == "cpu-service") {
        return s.total_us;
      }
    }
    return int64_t{0};
  };
  int64_t stock = cpu_total(1.0);
  int64_t fast = cpu_total(8.0);
  EXPECT_GT(stock, 0);
  EXPECT_LT(fast, stock);
}

}  // namespace
}  // namespace tcs
