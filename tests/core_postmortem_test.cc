// Determinism contract for SLO postmortem bundles.
//
// A violation's forensic bundle (frozen Perfetto window + postmortem JSON) derives
// every byte from virtual time and the spec, so rerunning the same configuration —
// serially or under any ParallelSweep worker count — must reproduce it exactly. These
// tests run violating experiments twice (and across --jobs 1 vs 4) and byte-compare
// the bundles, and pin down when the report JSON carries an "slo" block.

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/admission.h"
#include "src/core/experiments.h"
#include "src/core/parallel_sweep.h"
#include "src/core/report.h"
#include "src/session/os_profile.h"

namespace tcs {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "missing " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// wall_ms is the one nondeterministic report field; the postmortem paths embed the
// (deliberately distinct) out dirs. Neutralize both before comparing reports.
std::string Normalize(std::string json, const std::string& out_dir) {
  static const std::regex kWall("\"wall_ms\":[-+0-9.eE]+");
  json = std::regex_replace(json, kWall, "\"wall_ms\":0");
  size_t pos;
  while ((pos = json.find(out_dir)) != std::string::npos) {
    json.replace(pos, out_dir.size(), "<out>");
  }
  return json;
}

struct TempDir {
  explicit TempDir(const char* tag) {
    path = (std::filesystem::temp_directory_path() /
            (std::string("tcs_pm_") + tag + "_" + std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  std::string path;
};

ChaosOptions LossyChaos() {
  ChaosOptions opt;
  opt.loss_rate = 0.05;
  opt.duration = Duration::Seconds(5);
  opt.seed = 7;
  return opt;
}

SloSpec TightSlo(const std::string& name, const std::string& out_dir) {
  SloSpec spec;
  spec.max_worst_p99_ms = 1.0;  // no real run stays under 1 ms: guaranteed violation
  spec.name = name;
  spec.out_dir = out_dir;
  return spec;
}

TEST(PostmortemDeterminismTest, ChaosBundleIsByteIdenticalAcrossReruns) {
  TempDir dir_a("chaos_a");
  TempDir dir_b("chaos_b");
  auto run = [](const std::string& out_dir) {
    SloSpec spec = TightSlo("cell", out_dir);
    ObsConfig obs;
    obs.slo = &spec;
    return RunChaosPoint(OsProfile::Tse(), LossyChaos(), &obs);
  };
  ChaosPoint a = run(dir_a.path);
  ChaosPoint b = run(dir_b.path);
  ASSERT_TRUE(a.slo.active);
  ASSERT_FALSE(a.slo.passed);
  ASSERT_EQ(a.slo.postmortems.size(), 2u);
  EXPECT_EQ(a.slo.violated_at_us, b.slo.violated_at_us);
  std::string trace_a = ReadFile(dir_a.path + "/cell.trace.json");
  std::string trace_b = ReadFile(dir_b.path + "/cell.trace.json");
  EXPECT_EQ(trace_a, trace_b);
  EXPECT_GT(trace_a.size(), 1000u);  // a real window, not just metadata
  EXPECT_EQ(ReadFile(dir_a.path + "/cell.postmortem.json"),
            ReadFile(dir_b.path + "/cell.postmortem.json"));
  // Chaos points always attribute, so the bundle carries a blame digest.
  EXPECT_NE(ReadFile(dir_a.path + "/cell.postmortem.json").find("\"blame\":"),
            std::string::npos);
}

TEST(PostmortemDeterminismTest, BundlesAreInvariantAcrossSweepWorkerCounts) {
  TempDir dir_serial("jobs1");
  TempDir dir_parallel("jobs4");
  auto sweep = [](const std::string& out_dir, int workers) {
    ParallelSweep sweep(workers);
    return sweep.Map(4, [&out_dir](int i) {
      ChaosOptions opt;
      opt.loss_rate = 0.02 * (i + 1);
      opt.duration = Duration::Seconds(5);
      opt.seed = SweepSeed(7, static_cast<uint64_t>(i));
      SloSpec spec = TightSlo("cell" + std::to_string(i), out_dir);
      ObsConfig obs;
      obs.slo = &spec;
      return RunChaosPoint(OsProfile::Tse(), opt, &obs);
    });
  };
  std::vector<ChaosPoint> serial = sweep(dir_serial.path, 1);
  std::vector<ChaosPoint> parallel = sweep(dir_parallel.path, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_TRUE(serial[i].slo.active);
    EXPECT_EQ(Normalize(ToJson(serial[i]), dir_serial.path),
              Normalize(ToJson(parallel[i]), dir_parallel.path))
        << "cell " << i << " report differs across worker counts";
    std::string stem = "/cell" + std::to_string(i);
    EXPECT_EQ(ReadFile(dir_serial.path + stem + ".trace.json"),
              ReadFile(dir_parallel.path + stem + ".trace.json"));
    EXPECT_EQ(ReadFile(dir_serial.path + stem + ".postmortem.json"),
              ReadFile(dir_parallel.path + stem + ".postmortem.json"));
  }
}

TEST(PostmortemDeterminismTest, ConsolidationBundleIsByteIdenticalAcrossReruns) {
  TempDir dir_a("cons_a");
  TempDir dir_b("cons_b");
  auto run = [](const std::string& out_dir) {
    ConsolidationOptions opt;
    opt.users = 3;
    opt.duration = Duration::Seconds(5);
    opt.seed = 1;
    opt.burst_cpu = Duration::Millis(200);
    SloSpec spec = TightSlo("cons", out_dir);
    ObsConfig obs;
    obs.slo = &spec;
    return RunConsolidation(OsProfile::Tse(), opt, &obs);
  };
  ConsolidationResult a = run(dir_a.path);
  ConsolidationResult b = run(dir_b.path);
  ASSERT_TRUE(a.slo.active);
  ASSERT_FALSE(a.slo.passed);
  EXPECT_EQ(a.slo.violated_at_us, b.slo.violated_at_us);
  EXPECT_EQ(ReadFile(dir_a.path + "/cons.trace.json"),
            ReadFile(dir_b.path + "/cons.trace.json"));
  EXPECT_EQ(ReadFile(dir_a.path + "/cons.postmortem.json"),
            ReadFile(dir_b.path + "/cons.postmortem.json"));
}

TEST(SloReportBlockTest, ReportJsonCarriesSloBlockOnlyWhenActive) {
  // Without an SloSpec the report must be byte-identical to the pre-SLO schema
  // (the golden corpus depends on this).
  ChaosPoint plain = RunChaosPoint(OsProfile::Tse(), LossyChaos());
  EXPECT_EQ(ToJson(plain).find("\"slo\":"), std::string::npos);

  SloSpec spec;
  spec.max_worst_p99_ms = 1.0;  // violated
  ObsConfig obs;
  obs.slo = &spec;
  ChaosPoint gated = RunChaosPoint(OsProfile::Tse(), LossyChaos(), &obs);
  std::string json = ToJson(gated);
  EXPECT_NE(json.find("\"slo\":{\"passed\":false"), std::string::npos);
  EXPECT_NE(json.find("\"violating_objective\":\"worst_p99_ms\""), std::string::npos);
  // No out_dir => verdict in the report, no files on disk.
  EXPECT_TRUE(gated.slo.postmortems.empty());
}

TEST(SloReportBlockTest, PassingSloReportsInJsonWithoutBundle) {
  ChaosOptions opt;
  opt.duration = Duration::Seconds(5);  // fault-free: latencies stay tens of ms
  SloSpec spec;
  spec.max_worst_p99_ms = 10'000.0;  // absurdly lax: guaranteed pass
  ObsConfig obs;
  obs.slo = &spec;
  ChaosPoint point = RunChaosPoint(OsProfile::Tse(), opt, &obs);
  ASSERT_TRUE(point.slo.active);
  EXPECT_TRUE(point.slo.passed);
  EXPECT_EQ(point.slo.violated_at_us, -1);
  std::string json = ToJson(point);
  EXPECT_NE(json.find("\"slo\":{\"passed\":true"), std::string::npos);
}

}  // namespace
}  // namespace tcs
