#include "src/net/endpoint.h"

#include <gtest/gtest.h>

namespace tcs {
namespace {

TEST(HeaderModelTest, TcpIpCounts40) {
  HeaderModel h = HeaderModel::TcpIp();
  EXPECT_EQ(h.CountedPerPacket(), Bytes::Of(40));
  EXPECT_EQ(h.WirePerPacket(), Bytes::Of(58));
}

TEST(HeaderModelTest, VipElidesIpHeader) {
  HeaderModel h = HeaderModel::Vip();
  EXPECT_EQ(h.CountedPerPacket(), Bytes::Of(20));
  EXPECT_EQ(h.WirePerPacket(), Bytes::Of(38));
}

TEST(MessageSenderTest, SmallMessageIsOnePacket) {
  Simulator sim;
  Link link(sim);
  MessageSender sender(link, HeaderModel::TcpIp());
  sender.SendMessage(Bytes::Of(100));
  EXPECT_EQ(sender.messages_sent(), 1);
  EXPECT_EQ(sender.packets_sent(), 1);
  EXPECT_EQ(sender.payload_bytes(), Bytes::Of(100));
  EXPECT_EQ(sender.counted_bytes(), Bytes::Of(140));
}

TEST(MessageSenderTest, LargeMessageSegments) {
  Simulator sim;
  Link link(sim);  // MTU 1500, max payload 1460 with TCP/IP
  MessageSender sender(link, HeaderModel::TcpIp());
  sender.SendMessage(Bytes::Of(4000));
  EXPECT_EQ(sender.packets_sent(), 3);  // 1460+1460+1080
  EXPECT_EQ(sender.counted_bytes(), Bytes::Of(4000 + 3 * 40));
}

TEST(MessageSenderTest, PacketsForBoundaries) {
  Simulator sim;
  Link link(sim);
  MessageSender sender(link, HeaderModel::TcpIp());
  EXPECT_EQ(sender.PacketsFor(Bytes::Of(1460)), 1);
  EXPECT_EQ(sender.PacketsFor(Bytes::Of(1461)), 2);
  EXPECT_EQ(sender.PacketsFor(Bytes::Of(2920)), 2);
  EXPECT_EQ(sender.PacketsFor(Bytes::Zero()), 1);
}

TEST(MessageSenderTest, DeliveryFiresAfterLastSegment) {
  Simulator sim;
  Link link(sim);
  MessageSender sender(link, HeaderModel::TcpIp());
  TimePoint delivered;
  sender.SendMessage(Bytes::Of(4000), [&] { delivered = sim.Now(); });
  sim.Run();
  // Three frames back to back on a 10 Mbps link, then propagation. Wire sizes:
  // 1460+58, 1460+58, 1080+58 = 1518,1518,1138 bytes; serialization rounds up per frame.
  int64_t serialization = 1215 + 1215 + 911;  // ceil(bytes*8/10) us each at 10 Mbps
  EXPECT_EQ(delivered.ToMicros(), serialization + 50);
}

TEST(MessageSenderTest, VipReducesCountedBytes) {
  Simulator sim;
  Link link(sim);
  MessageSender tcpip(link, HeaderModel::TcpIp());
  MessageSender vip(link, HeaderModel::Vip());
  for (int i = 0; i < 100; ++i) {
    tcpip.SendMessage(Bytes::Of(200));
    vip.SendMessage(Bytes::Of(200));
  }
  EXPECT_EQ(tcpip.counted_bytes() - vip.counted_bytes(), Bytes::Of(100 * 20));
}

TEST(MessageSenderTest, EmptyMessageStillCostsAFrame) {
  Simulator sim;
  Link link(sim);
  MessageSender sender(link, HeaderModel::TcpIp());
  sender.SendMessage(Bytes::Zero());
  EXPECT_EQ(sender.packets_sent(), 1);
  EXPECT_EQ(sender.counted_bytes(), Bytes::Of(40));
}

}  // namespace
}  // namespace tcs
