// SMP behaviour of the Cpu engine: multiple processors sharing one ready queue.

#include <gtest/gtest.h>

#include <memory>

#include "src/cpu/cpu.h"
#include "src/cpu/linux_scheduler.h"
#include "src/cpu/nt_scheduler.h"
#include "src/sim/simulator.h"
#include "src/workload/sink.h"

namespace tcs {
namespace {

CpuConfig Smp(int processors) {
  CpuConfig cfg;
  cfg.processors = processors;
  cfg.context_switch_cost = Duration::Zero();
  return cfg;
}

TEST(CpuSmpTest, TwoThreadsRunInParallel) {
  Simulator sim;
  Cpu cpu(sim, std::make_unique<LinuxScheduler>(), Smp(2));
  Thread* a = cpu.CreateThread("a", ThreadClass::kBatch, 0);
  Thread* b = cpu.CreateThread("b", ThreadClass::kBatch, 0);
  TimePoint a_done;
  TimePoint b_done;
  cpu.PostWork(*a, Duration::Millis(20), [&] { a_done = sim.Now(); });
  cpu.PostWork(*b, Duration::Millis(20), [&] { b_done = sim.Now(); });
  sim.Run();
  // No interleaving needed: both finish at 20 ms on their own processor.
  EXPECT_EQ(a_done, TimePoint::FromMicros(20000));
  EXPECT_EQ(b_done, TimePoint::FromMicros(20000));
  EXPECT_EQ(cpu.busy_time(), Duration::Millis(40));
}

TEST(CpuSmpTest, ThirdThreadWaitsForAProcessor) {
  Simulator sim;
  Cpu cpu(sim, std::make_unique<LinuxScheduler>(), Smp(2));
  Thread* a = cpu.CreateThread("a", ThreadClass::kBatch, 0);
  Thread* b = cpu.CreateThread("b", ThreadClass::kBatch, 0);
  Thread* c = cpu.CreateThread("c", ThreadClass::kBatch, 0);
  TimePoint c_done;
  cpu.PostWork(*a, Duration::Millis(5));
  cpu.PostWork(*b, Duration::Millis(5));
  cpu.PostWork(*c, Duration::Millis(5), [&] { c_done = sim.Now(); });
  sim.Run();
  // c starts when the first processor frees at 5 ms.
  EXPECT_EQ(c_done, TimePoint::FromMicros(10000));
}

TEST(CpuSmpTest, ThroughputScalesWithProcessors) {
  auto total_done_by = [](int procs) {
    Simulator sim;
    Cpu cpu(sim, std::make_unique<LinuxScheduler>(), Smp(procs));
    int completed = 0;
    for (int i = 0; i < 16; ++i) {
      Thread* t = cpu.CreateThread("w", ThreadClass::kBatch, 0);
      cpu.PostWork(*t, Duration::Millis(10), [&] { ++completed; });
    }
    sim.RunUntil(TimePoint::Zero() + Duration::Millis(40));
    return completed;
  };
  EXPECT_EQ(total_done_by(1), 4);
  EXPECT_EQ(total_done_by(2), 8);
  EXPECT_EQ(total_done_by(4), 16);
}

TEST(CpuSmpTest, PreemptionPicksWeakestVictim) {
  Simulator sim;
  Cpu cpu(sim, std::make_unique<NtScheduler>(), Smp(2));
  Thread* low = cpu.CreateThread("low", ThreadClass::kBatch, 4);
  Thread* mid = cpu.CreateThread("mid", ThreadClass::kBatch, 8);
  Thread* gui = cpu.CreateThread("gui", ThreadClass::kGui, 9);
  TimePoint low_done;
  TimePoint mid_done;
  cpu.PostWork(*low, Duration::Millis(10), [&] { low_done = sim.Now(); });
  cpu.PostWork(*mid, Duration::Millis(10), [&] { mid_done = sim.Now(); });
  sim.Schedule(Duration::Millis(2), [&] {
    cpu.PostWork(*gui, Duration::Millis(4), nullptr, WakeReason::kInputEvent);
  });
  sim.Run();
  // The boosted GUI thread displaces `low` (priority 4), not `mid` (priority 8):
  // mid finishes on schedule, low is delayed by the GUI's 4 ms.
  EXPECT_EQ(mid_done, TimePoint::FromMicros(10000));
  EXPECT_EQ(low_done, TimePoint::FromMicros(14000));
}

TEST(CpuSmpTest, NoPreemptionWhenIdleProcessorAvailable) {
  Simulator sim;
  Cpu cpu(sim, std::make_unique<NtScheduler>(), Smp(2));
  Thread* sink = cpu.CreateThread("sink", ThreadClass::kBatch, 8);
  Thread* gui = cpu.CreateThread("gui", ThreadClass::kGui, 9);
  TimePoint sink_done;
  cpu.PostWork(*sink, Duration::Millis(10), [&] { sink_done = sim.Now(); });
  sim.Schedule(Duration::Millis(2), [&] {
    cpu.PostWork(*gui, Duration::Millis(4), nullptr, WakeReason::kInputEvent);
  });
  sim.Run();
  // The GUI thread takes the idle second processor; the sink is untouched.
  EXPECT_EQ(sink_done, TimePoint::FromMicros(10000));
}

TEST(CpuSmpTest, SinksSaturateAllProcessors) {
  Simulator sim;
  Cpu cpu(sim, std::make_unique<LinuxScheduler>(), Smp(4));
  StartSinks(cpu, 6, 0);
  sim.RunUntil(TimePoint::Zero() + Duration::Seconds(1));
  EXPECT_FALSE(cpu.IsIdle());
  EXPECT_EQ(cpu.busy_time(), Duration::Seconds(4));  // 4 processors x 1 s
  EXPECT_EQ(cpu.scheduler().ReadyCount(), 2u);       // 6 sinks - 4 running
}

TEST(CpuSmpTest, SmpHalvesTypingStallsUnderLoad) {
  auto stall_with_procs = [](int procs) {
    Simulator sim;
    CpuConfig cfg = Smp(procs);
    Cpu cpu(sim, std::make_unique<LinuxScheduler>(), cfg);
    StartSinks(cpu, 10, 0);
    Thread* editor = cpu.CreateThread("editor", ThreadClass::kGui, 0);
    TimePoint done;
    sim.Schedule(Duration::Millis(105), [&] {
      cpu.PostWork(*editor, Duration::Millis(1), [&] { done = sim.Now(); });
    });
    sim.RunUntil(TimePoint::Zero() + Duration::Seconds(2));
    return (done - TimePoint::FromMicros(105000)).ToMillisF();
  };
  double one = stall_with_procs(1);
  double four = stall_with_procs(4);
  EXPECT_GT(one, four * 2.0);
}

}  // namespace
}  // namespace tcs
