// Behavioural tests for the X / LBX / RDP protocol models: message granularity,
// compression, caching, and the relative-efficiency properties §6 reports.

#include <gtest/gtest.h>

#include <memory>

#include "src/proto/lbx_protocol.h"
#include "src/proto/rdp_protocol.h"
#include "src/proto/x_protocol.h"

namespace tcs {
namespace {

// Shared harness: one link per channel direction is unnecessary for byte accounting, so
// both senders share a link.
struct ProtoFixture {
  ProtoFixture()
      : link(sim),
        display(link, HeaderModel::TcpIp()),
        input(link, HeaderModel::TcpIp()),
        tap(Duration::Millis(100)) {}

  template <typename P, typename... Args>
  std::unique_ptr<P> Make(Args&&... args) {
    return std::make_unique<P>(sim, display, input, &tap, Rng(1234),
                               std::forward<Args>(args)...);
  }

  Simulator sim;
  Link link;
  MessageSender display;
  MessageSender input;
  ProtoTap tap;
};

TEST(ProtoTapTest, AccountsPerChannel) {
  ProtoTap tap;
  tap.RecordMessage(Channel::kDisplay, Bytes::Of(100), Bytes::Of(140), TimePoint::Zero());
  tap.RecordMessage(Channel::kInput, Bytes::Of(32), Bytes::Of(72), TimePoint::Zero());
  tap.RecordMessage(Channel::kInput, Bytes::Of(32), Bytes::Of(72), TimePoint::Zero());
  EXPECT_EQ(tap.messages(Channel::kDisplay), 1);
  EXPECT_EQ(tap.messages(Channel::kInput), 2);
  EXPECT_EQ(tap.payload_bytes(Channel::kInput), Bytes::Of(64));
  EXPECT_EQ(tap.counted_bytes(Channel::kDisplay), Bytes::Of(140));
  EXPECT_EQ(tap.total_messages(), 3);
  EXPECT_NEAR(tap.AverageMessageSize(), (140.0 + 72.0 + 72.0) / 3.0, 1e-9);
}

TEST(XProtocolTest, SmallRequestsBatchUntilThreshold) {
  ProtoFixture f;
  auto x = f.Make<XProtocol>();
  // Each rect request is 28 bytes; the 256-byte Xlib buffer flushes after 10 of them.
  for (int i = 0; i < 9; ++i) {
    x->SubmitDraw(DrawCommand::Rect(10, 10));
  }
  EXPECT_EQ(f.tap.messages(Channel::kDisplay), 0);
  x->SubmitDraw(DrawCommand::Rect(10, 10));
  EXPECT_EQ(f.tap.messages(Channel::kDisplay), 1);
  EXPECT_EQ(f.tap.payload_bytes(Channel::kDisplay), Bytes::Of(280));
}

TEST(XProtocolTest, FlushDrainsPartialBuffer) {
  ProtoFixture f;
  auto x = f.Make<XProtocol>();
  x->SubmitDraw(DrawCommand::Rect(10, 10));
  x->Flush();
  EXPECT_EQ(f.tap.messages(Channel::kDisplay), 1);
  EXPECT_EQ(f.tap.payload_bytes(Channel::kDisplay), Bytes::Of(28));
  x->Flush();  // idempotent on empty buffer
  EXPECT_EQ(f.tap.messages(Channel::kDisplay), 1);
}

TEST(XProtocolTest, PutImageShipsRawPixels) {
  ProtoFixture f;
  auto x = f.Make<XProtocol>();
  BitmapRef bmp = BitmapRef::Make(42, 100, 50, 0.5);
  x->SubmitDraw(DrawCommand::PutImage(bmp));
  x->Flush();
  // 100x50 at 8bpp = 5000 raw bytes; request = 4 + pad4(16 + 5000).
  EXPECT_GE(f.tap.payload_bytes(Channel::kDisplay), Bytes::Of(5000));
}

TEST(XProtocolTest, EveryInputEventIsA32ByteMessage) {
  ProtoFixture f;
  auto x = f.Make<XProtocol>();
  for (int i = 0; i < 10; ++i) {
    x->SubmitInput(InputEvent::Move(i, i));
  }
  x->SubmitInput(InputEvent::Key(true));
  x->SubmitInput(InputEvent::Key(false));
  EXPECT_EQ(f.tap.messages(Channel::kInput), 12);
  EXPECT_EQ(f.tap.payload_bytes(Channel::kInput), Bytes::Of(12 * 32));
}

TEST(XProtocolTest, SyncFlushesAndElicitsReply) {
  ProtoFixture f;
  auto x = f.Make<XProtocol>();
  x->SubmitDraw(DrawCommand::Rect(5, 5));
  x->SubmitDraw(DrawCommand::Sync(Bytes::Of(400)));
  EXPECT_EQ(f.tap.messages(Channel::kDisplay), 1);  // forced flush
  EXPECT_EQ(f.tap.messages(Channel::kInput), 1);    // the reply
  EXPECT_EQ(f.tap.payload_bytes(Channel::kInput), Bytes::Of(400));
}

TEST(LbxProtocolTest, CompressesRelativeToX) {
  ProtoFixture fx;
  ProtoFixture fl;
  auto x = fx.Make<XProtocol>();
  auto lbx = fl.Make<LbxProtocol>();
  for (int i = 0; i < 200; ++i) {
    x->SubmitDraw(DrawCommand::Text(40));
    lbx->SubmitDraw(DrawCommand::Text(40));
  }
  x->Flush();
  lbx->Flush();
  EXPECT_LT(fl.tap.payload_bytes(Channel::kDisplay).count(),
            fx.tap.payload_bytes(Channel::kDisplay).count() * 3 / 4);
}

TEST(LbxProtocolTest, MoreDisplayMessagesThanX) {
  ProtoFixture fx;
  ProtoFixture fl;
  auto x = fx.Make<XProtocol>();
  auto lbx = fl.Make<LbxProtocol>();
  for (int i = 0; i < 100; ++i) {
    x->SubmitDraw(DrawCommand::Text(40));
    lbx->SubmitDraw(DrawCommand::Text(40));
  }
  x->Flush();
  lbx->Flush();
  EXPECT_GT(fl.tap.messages(Channel::kDisplay), fx.tap.messages(Channel::kDisplay));
}

TEST(LbxProtocolTest, DeltaCompressedInputSmallerThanX) {
  ProtoFixture fx;
  ProtoFixture fl;
  auto x = fx.Make<XProtocol>();
  auto lbx = fl.Make<LbxProtocol>();
  for (int i = 0; i < 100; ++i) {
    x->SubmitInput(InputEvent::Move(i, i));
    lbx->SubmitInput(InputEvent::Move(i, i));
  }
  EXPECT_LT(fl.tap.payload_bytes(Channel::kInput).count(),
            fx.tap.payload_bytes(Channel::kInput).count());
}

TEST(LbxProtocolTest, ShortCircuitsSomeReplies) {
  ProtoFixture f;
  auto lbx = f.Make<LbxProtocol>();
  for (int i = 0; i < 200; ++i) {
    lbx->SubmitDraw(DrawCommand::Sync(Bytes::Of(200)));
  }
  // ~30% of replies answered by the proxy: strictly fewer than 200 reply messages.
  EXPECT_LT(f.tap.messages(Channel::kInput), 200);
  EXPECT_GT(f.tap.messages(Channel::kInput), 100);
}

TEST(RdpProtocolTest, OrdersBatchIntoLargePdus) {
  ProtoFixture f;
  auto rdp = f.Make<RdpProtocol>();
  // 12-byte geometry orders: ~117 fit before the 1400-byte flush threshold.
  for (int i = 0; i < 116; ++i) {
    rdp->SubmitDraw(DrawCommand::Rect(10, 10));
  }
  EXPECT_EQ(f.tap.messages(Channel::kDisplay), 0);
  for (int i = 0; i < 10; ++i) {
    rdp->SubmitDraw(DrawCommand::Rect(10, 10));
  }
  EXPECT_EQ(f.tap.messages(Channel::kDisplay), 1);
  EXPECT_GE(f.tap.payload_bytes(Channel::kDisplay), Bytes::Of(1400));
}

TEST(RdpProtocolTest, GlyphCacheShrinksRepeatedText) {
  ProtoFixture f;
  auto rdp = f.Make<RdpProtocol>();
  rdp->SubmitDraw(DrawCommand::Text(50));
  rdp->Flush();
  Bytes first = f.tap.payload_bytes(Channel::kDisplay);
  for (int i = 0; i < 20; ++i) {
    rdp->SubmitDraw(DrawCommand::Text(50));
  }
  rdp->Flush();
  Bytes later = f.tap.payload_bytes(Channel::kDisplay) - first;
  // After the glyph cache warms, the average text order is a small fraction of the first
  // (indexes, not rasters).
  EXPECT_LT(later.count() / 20, first.count() / 2);
}

TEST(RdpProtocolTest, BitmapCacheHitAvoidsRetransfer) {
  ProtoFixture f;
  auto rdp = f.Make<RdpProtocol>();
  BitmapRef bmp = BitmapRef::Make(7, 200, 100, 0.5);  // 20 KB raw, 10 KB compressed
  rdp->SubmitDraw(DrawCommand::PutImage(bmp));
  rdp->Flush();
  Bytes after_miss = f.tap.payload_bytes(Channel::kDisplay);
  EXPECT_GE(after_miss, bmp.compressed_bytes);
  for (int i = 0; i < 10; ++i) {
    rdp->SubmitDraw(DrawCommand::PutImage(bmp));
  }
  rdp->Flush();
  Bytes after_hits = f.tap.payload_bytes(Channel::kDisplay) - after_miss;
  EXPECT_LE(after_hits, Bytes::Of(10 * 12));
  EXPECT_EQ(rdp->bitmap_cache().hits(), 10);
}

TEST(RdpProtocolTest, InputEventsBatchIntoOnePdu) {
  ProtoFixture f;
  auto rdp = f.Make<RdpProtocol>();
  for (int i = 0; i < 20; ++i) {
    rdp->SubmitInput(InputEvent::Move(i, i));
  }
  EXPECT_EQ(f.tap.messages(Channel::kInput), 0);  // still in the batch window
  f.sim.RunFor(Duration::Millis(60));
  EXPECT_EQ(f.tap.messages(Channel::kInput), 1);
  EXPECT_EQ(f.tap.payload_bytes(Channel::kInput), Bytes::Of(10 + 20 * 4));
}

TEST(RdpProtocolTest, SyncIsLocalNoTraffic) {
  ProtoFixture f;
  auto rdp = f.Make<RdpProtocol>();
  rdp->SubmitDraw(DrawCommand::Sync(Bytes::Of(400)));
  rdp->Flush();
  f.sim.RunFor(Duration::Seconds(1));
  EXPECT_EQ(f.tap.total_messages(), 0);
}

TEST(RdpProtocolTest, EncodeCostHigherOnBitmapMiss) {
  ProtoFixture f;
  auto rdp = f.Make<RdpProtocol>();
  Duration total = Duration::Zero();
  rdp->set_encode_cost_sink([&](Duration d) { total += d; });
  BitmapRef bmp = BitmapRef::Make(9, 200, 120, 0.5);  // 24000 raw bytes
  rdp->SubmitDraw(DrawCommand::PutImage(bmp));
  Duration miss_cost = total;
  total = Duration::Zero();
  rdp->SubmitDraw(DrawCommand::PutImage(bmp));
  Duration hit_cost = total;
  EXPECT_GT(miss_cost, hit_cost * 10);
  // 24000 bytes at 500 us/KiB ~ 11.7 ms of encode work.
  EXPECT_GT(miss_cost, Duration::Millis(5));
}

TEST(SessionSetupBytesTest, MatchPaperConstants) {
  ProtoFixture f;
  auto x = f.Make<XProtocol>();
  auto rdp = f.Make<RdpProtocol>();
  EXPECT_EQ(x->session_setup_bytes(), Bytes::Of(16312));
  EXPECT_EQ(rdp->session_setup_bytes(), Bytes::Of(45328));
}


TEST(XProtocolTest, RequestProfileAccountsEveryRequest) {
  ProtoFixture f;
  auto x = f.Make<XProtocol>();
  x->SubmitDraw(DrawCommand::Text(10));
  x->SubmitDraw(DrawCommand::Rect(5, 5));
  x->SubmitDraw(DrawCommand::Rect(5, 5));
  x->SubmitDraw(DrawCommand::PutImage(BitmapRef::Make(1, 10, 10, 0.5)));
  x->Flush();
  int64_t total = 0;
  for (const auto& [opcode, prof] : x->request_profile()) {
    total += prof.count;
    EXPECT_GT(prof.bytes, 0);
  }
  EXPECT_EQ(total, x->requests_encoded());
  EXPECT_EQ(x->request_profile().at(70).count, 2);  // PolyFillRectangle
  EXPECT_EQ(x->request_profile().at(74).count, 1);  // PolyText8
  EXPECT_EQ(x->request_profile().at(72).count, 1);  // PutImage
  EXPECT_STREQ(XProtocol::OpcodeName(72), "PutImage");
  EXPECT_STREQ(XProtocol::OpcodeName(74), "PolyText8");
}

// Relative-efficiency property on a mixed mini-workload: RDP < LBX < X in display bytes.
TEST(ProtocolComparisonTest, ByteEfficiencyOrdering) {
  auto run = [](auto make_proto) {
    ProtoFixture f;
    auto p = make_proto(f);
    Rng rng(55);
    // Text/widget interaction, like the paper's WordPerfect + control panel mix: typing,
    // occasional geometry, and recurring widget redraws (toolbar icons from a small pool)
    // that X must re-raster but RDP serves from the bitmap cache.
    for (int step = 0; step < 300; ++step) {
      p->SubmitDraw(DrawCommand::Text(static_cast<int>(rng.NextBelow(30)) + 20));
      p->SubmitDraw(DrawCommand::Text(static_cast<int>(rng.NextBelow(20)) + 10));
      if (step % 2 == 0) {
        p->SubmitDraw(DrawCommand::Rect(40, 20));
      }
      if (step % 5 == 0) {
        for (int k = 0; k < 3; ++k) {
          BitmapRef icon = BitmapRef::Make(1000 + (step / 5 + k) % 10, 32, 32, 0.6);
          p->SubmitDraw(DrawCommand::PutImage(icon));
        }
      }
      if (step % 10 == 9) {
        p->Flush();  // think-time pause drains all buffers
      }
    }
    p->Flush();
    return f.tap.counted_bytes(Channel::kDisplay).count();
  };
  int64_t x_bytes = run([](ProtoFixture& f) { return f.Make<XProtocol>(); });
  int64_t lbx_bytes = run([](ProtoFixture& f) { return f.Make<LbxProtocol>(); });
  int64_t rdp_bytes = run([](ProtoFixture& f) { return f.Make<RdpProtocol>(); });
  EXPECT_LT(rdp_bytes, lbx_bytes);
  EXPECT_LT(lbx_bytes, x_bytes);
}

}  // namespace
}  // namespace tcs
