#include "src/core/parallel_sweep.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/core/experiments.h"
#include "src/session/os_profile.h"

namespace tcs {
namespace {

TEST(SweepSeedTest, DeterministicAndDistinct) {
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 1000; ++i) {
    uint64_t seed = SweepSeed(1, i);
    EXPECT_EQ(seed, SweepSeed(1, i));
    EXPECT_NE(seed, 0u);
    seen.insert(seed);
  }
  EXPECT_EQ(seen.size(), 1000u);  // no collisions across a sweep's indices
  EXPECT_NE(SweepSeed(1, 0), SweepSeed(2, 0));
}

TEST(ParallelSweepTest, MapReturnsResultsInSubmissionOrder) {
  ParallelSweep sweep(4);
  // Early indices sleep, late ones finish first: order must still be by index.
  std::vector<int> results = sweep.Map(16, [](int i) {
    if (i < 4) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20 - i * 5));
    }
    return i * i;
  });
  ASSERT_EQ(results.size(), 16u);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(results[static_cast<size_t>(i)], i * i);
  }
}

TEST(ParallelSweepTest, WorkerCountDoesNotChangeExperimentResults) {
  // The acceptance contract: N workers produce byte-identical results to the serial
  // path, because per-config seeds depend only on the config index.
  auto run = [](int workers) {
    ParallelSweep sweep(workers);
    return sweep.Map(6, [](int i) {
      OsProfile profile = i / 3 == 0 ? OsProfile::Tse() : OsProfile::LinuxX();
      return RunTypingUnderLoad(profile, (i % 3) * 5, Duration::Seconds(5),
                                SweepSeed(1, static_cast<uint64_t>(i)));
    });
  };
  std::vector<TypingUnderLoadResult> serial = run(1);
  std::vector<TypingUnderLoadResult> parallel = run(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].os_name, parallel[i].os_name);
    EXPECT_EQ(serial[i].sinks, parallel[i].sinks);
    EXPECT_EQ(serial[i].updates, parallel[i].updates);
    // Bit-exact, not approximate: the simulations must be identical.
    EXPECT_EQ(serial[i].avg_stall_ms, parallel[i].avg_stall_ms);
    EXPECT_EQ(serial[i].max_stall_ms, parallel[i].max_stall_ms);
    EXPECT_EQ(serial[i].jitter_ms, parallel[i].jitter_ms);
  }
}

TEST(ParallelSweepTest, ExceptionDoesNotDeadlockOrAbandonOtherConfigs) {
  ParallelSweep sweep(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      sweep.RunIndexed(32,
                       [&completed](int i) {
                         if (i == 5) {
                           throw std::runtime_error("config 5 exploded");
                         }
                         completed.fetch_add(1);
                       }),
      std::runtime_error);
  // Every other configuration still ran to completion; the pool drained cleanly.
  EXPECT_EQ(completed.load(), 31);
}

TEST(ParallelSweepTest, LowestIndexExceptionWins) {
  ParallelSweep sweep(8);
  try {
    sweep.RunIndexed(16, [](int i) {
      if (i % 2 == 1) {
        throw std::runtime_error("config " + std::to_string(i));
      }
    });
    FAIL() << "expected a rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "config 1");
  }
}

TEST(ParallelSweepTest, HandlesEmptyAndSingleConfigSweeps) {
  ParallelSweep sweep(4);
  EXPECT_TRUE(sweep.Map(0, [](int i) { return i; }).empty());
  std::vector<int> one = sweep.Map(1, [](int i) { return i + 41; });
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 41);
}

}  // namespace
}  // namespace tcs
