// WAN pathology experiment runner: determinism across reruns and sweep worker counts,
// the empty-profile differential (byte-identical to LAN runs), and the headline claim —
// backpressure-driven degradation beats degrade-off on worst-user p99 AND availability.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "src/core/experiments.h"
#include "src/core/parallel_sweep.h"
#include "src/core/report.h"
#include "src/util/config_error.h"

namespace tcs {
namespace {

// Every deterministic field of a WanPoint (wall_ms excluded).
auto Fields(const WanPoint& p) {
  return std::tuple(
      p.os_name, p.profile, p.degrade, p.users, p.worst_p99_ms, p.mean_ms,
      p.perceptible_fraction, p.availability, p.worst_starved_fraction, p.updates,
      p.degradation_peak_level, p.degradation_transitions, p.degraded_seconds,
      p.animation_frames_skipped, p.background_frames_drawn, p.faults.active,
      p.faults.availability, p.faults.frames_lost, p.faults.burst_losses,
      p.faults.wan_queue_drops, p.faults.retransmissions, p.faults.frames_shed,
      p.run.events_executed, p.run.pending_events);
}

WanOptions ShortOptions(const std::string& profile, bool degrade) {
  WanOptions opt;
  opt.profile = WanProfileByName(profile);
  opt.degrade = degrade;
  opt.duration = Duration::Seconds(8);
  opt.seed = 21;
  return opt;
}

TEST(WanProfileTest, NamedProfilesResolveAndUnknownThrows) {
  ASSERT_EQ(WanProfileNames().size(), 4u);
  for (const std::string& name : WanProfileNames()) {
    WanProfile p = WanProfileByName(name);
    EXPECT_EQ(p.name, name);
    EXPECT_TRUE(p.queue_bytes.count() > 0);
    EXPECT_TRUE(p.down_rate.bps() > 0);
  }
  EXPECT_THROW(WanProfileByName("carrier-pigeon"), ConfigError);
}

TEST(WanPointTest, RunIsDeterministicAcrossReruns) {
  WanOptions opt = ShortOptions("lte", /*degrade=*/true);
  WanPoint a = RunWanPoint(OsProfile::Tse(), opt);
  WanPoint b = RunWanPoint(OsProfile::Tse(), opt);
  EXPECT_EQ(Fields(a), Fields(b));
  EXPECT_TRUE(a.faults.active);
  EXPECT_GT(a.updates, 0);
}

TEST(WanPointTest, OutputIsIdenticalAcrossSweepWorkerCounts) {
  auto cell = [](int i) {
    return RunWanPoint(OsProfile::Tse(), ShortOptions("dsl", /*degrade=*/i == 1));
  };
  ParallelSweep serial(1);
  ParallelSweep parallel(4);
  auto a = serial.Map(2, cell);
  auto b = parallel.Map(2, cell);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(Fields(a[i]), Fields(b[i]));
  }
}

TEST(WanPointTest, EmptyProfileIsAPlainLanRun) {
  // An all-defaults profile must inject nothing: the fault ledger stays inactive and
  // arming the (never-engaging) degradation controller changes no user-visible number.
  WanOptions opt;
  opt.profile = WanProfile{};  // name empty, all parameters zero
  opt.duration = Duration::Seconds(8);
  WanPoint off = RunWanPoint(OsProfile::Tse(), opt);
  EXPECT_FALSE(off.faults.active);
  EXPECT_EQ(off.faults.wan_queue_drops, 0u);
  EXPECT_EQ(off.faults.burst_losses, 0u);
  EXPECT_DOUBLE_EQ(off.availability, 1.0);

  opt.degrade = true;
  WanPoint on = RunWanPoint(OsProfile::Tse(), opt);
  EXPECT_EQ(on.degradation_transitions, 0);
  EXPECT_EQ(off.worst_p99_ms, on.worst_p99_ms);
  EXPECT_EQ(off.mean_ms, on.mean_ms);
  EXPECT_EQ(off.updates, on.updates);
  EXPECT_EQ(off.worst_starved_fraction, on.worst_starved_fraction);
}

TEST(WanPointTest, DegradationBeatsDegradeOffOnDeepBufferProfiles) {
  // The acceptance claim, at test scale: on bufferbloated profiles the controller must
  // win on BOTH worst-user p99 and availability, with the same seed on both arms.
  for (const std::string& profile : {std::string("dsl"), std::string("satellite")}) {
    WanPoint off = RunWanPoint(OsProfile::Tse(), ShortOptions(profile, false));
    WanPoint on = RunWanPoint(OsProfile::Tse(), ShortOptions(profile, true));
    EXPECT_LT(on.worst_p99_ms, off.worst_p99_ms) << profile;
    EXPECT_GT(on.availability, off.availability) << profile;
    // The off arm carries no degradation ledger; the on arm shows its work.
    EXPECT_EQ(off.degradation_transitions, 0) << profile;
    EXPECT_GT(on.degradation_transitions, 0) << profile;
    EXPECT_GT(on.degradation_peak_level, 0) << profile;
    EXPECT_GT(on.degraded_seconds, 0.0) << profile;
  }
}

TEST(WanPointTest, ReportJsonCarriesTheWanBlock) {
  WanPoint p = RunWanPoint(OsProfile::Tse(), ShortOptions("congested-office", true));
  std::string json = ToJson(p);
  EXPECT_NE(json.find("\"experiment\":\"wan_point\""), std::string::npos);
  EXPECT_NE(json.find("\"profile\":\"congested-office\""), std::string::npos);
  EXPECT_NE(json.find("\"degrade\":true"), std::string::npos);
  EXPECT_NE(json.find("\"wan_queue_drops\""), std::string::npos);
  EXPECT_NE(json.find("\"degradation_peak_level\""), std::string::npos);
}

}  // namespace
}  // namespace tcs
