// Tests for the §7 related-work protocol models: SLIM (SunRay) and VNC (RFB).

#include <gtest/gtest.h>

#include <memory>

#include "src/proto/rdp_protocol.h"
#include "src/proto/slim_protocol.h"
#include "src/proto/vnc_protocol.h"
#include "src/proto/x_protocol.h"

namespace tcs {
namespace {

struct ProtoFixture {
  ProtoFixture()
      : link(sim),
        display(link, HeaderModel::TcpIp()),
        input(link, HeaderModel::TcpIp()),
        tap(Duration::Millis(100)) {}

  Simulator sim;
  Link link;
  MessageSender display;
  MessageSender input;
  ProtoTap tap;
};

TEST(SlimProtocolTest, OneMessagePerCommand) {
  ProtoFixture f;
  SlimProtocol slim(f.sim, f.display, f.input, &f.tap, Rng(1));
  slim.SubmitDraw(DrawCommand::Rect(10, 10));
  slim.SubmitDraw(DrawCommand::Line(20));
  slim.SubmitDraw(DrawCommand::CopyArea(100, 100));
  EXPECT_EQ(f.tap.messages(Channel::kDisplay), 3);
  EXPECT_EQ(slim.commands_encoded(), 3);
}

TEST(SlimProtocolTest, TextShipsAsTwoColorBitmap) {
  ProtoFixture f;
  SlimProtocol slim(f.sim, f.display, f.input, &f.tap, Rng(1));
  slim.SubmitDraw(DrawCommand::Text(10));
  // 10 glyphs of 8x16 at 1 bpp = 160 bytes + colors + header.
  EXPECT_GE(f.tap.payload_bytes(Channel::kDisplay), Bytes::Of(160));
  EXPECT_LE(f.tap.payload_bytes(Channel::kDisplay), Bytes::Of(200));
}

TEST(SlimProtocolTest, NoBitmapCache) {
  ProtoFixture f;
  SlimProtocol slim(f.sim, f.display, f.input, &f.tap, Rng(1));
  BitmapRef bmp = BitmapRef::Make(5, 100, 50, 0.5);
  slim.SubmitDraw(DrawCommand::PutImage(bmp));
  Bytes first = f.tap.payload_bytes(Channel::kDisplay);
  slim.SubmitDraw(DrawCommand::PutImage(bmp));
  Bytes second = f.tap.payload_bytes(Channel::kDisplay) - first;
  // The identical bitmap costs the same raw transfer again.
  EXPECT_EQ(second, first);
  EXPECT_GE(first, bmp.raw_bytes);
}

TEST(SlimProtocolTest, SyncIsLocal) {
  ProtoFixture f;
  SlimProtocol slim(f.sim, f.display, f.input, &f.tap, Rng(1));
  slim.SubmitDraw(DrawCommand::Sync(Bytes::Of(500)));
  EXPECT_EQ(f.tap.total_messages(), 0);
}

TEST(VncProtocolTest, NoUpdateWithoutPull) {
  ProtoFixture f;
  VncProtocol vnc(f.sim, f.display, f.input, &f.tap, Rng(1));
  vnc.SubmitDraw(DrawCommand::Rect(100, 100));
  f.sim.RunFor(Duration::Seconds(1));
  // Pull never started: nothing ships.
  EXPECT_EQ(f.tap.messages(Channel::kDisplay), 0);
}

TEST(VncProtocolTest, PullShipsCoalescedUpdate) {
  ProtoFixture f;
  VncProtocol vnc(f.sim, f.display, f.input, &f.tap, Rng(1));
  vnc.StartClientPull();
  vnc.SubmitDraw(DrawCommand::Rect(100, 100));
  vnc.SubmitDraw(DrawCommand::Rect(50, 50));
  f.sim.RunFor(Duration::Millis(150));  // one pull at t=100ms
  EXPECT_EQ(vnc.updates_sent(), 1);
  EXPECT_EQ(f.tap.messages(Channel::kDisplay), 1);
  // Input channel carries the update request.
  EXPECT_GE(f.tap.messages(Channel::kInput), 1);
  vnc.StopClientPull();
}

TEST(VncProtocolTest, IdleScreenShipsNothing) {
  ProtoFixture f;
  VncProtocol vnc(f.sim, f.display, f.input, &f.tap, Rng(1));
  vnc.StartClientPull();
  f.sim.RunFor(Duration::Seconds(2));
  vnc.StopClientPull();
  EXPECT_EQ(vnc.updates_sent(), 0);
  EXPECT_EQ(f.tap.messages(Channel::kDisplay), 0);
}

TEST(VncProtocolTest, FastAnimationCoalescesToPullRate) {
  ProtoFixture f;
  VncProtocol vnc(f.sim, f.display, f.input, &f.tap, Rng(1));
  vnc.StartClientPull();
  // 20 Hz damage against a 10 Hz pull: at most one update per pull.
  for (int i = 0; i < 40; ++i) {
    f.sim.At(TimePoint::FromMicros(i * 50000),
             [&vnc] { vnc.SubmitDraw(DrawCommand::Rect(468, 60)); });
  }
  f.sim.RunUntil(TimePoint::Zero() + Duration::Seconds(2));
  vnc.StopClientPull();
  EXPECT_LE(vnc.updates_sent(), 20);
  EXPECT_GE(vnc.updates_sent(), 15);
}

TEST(VncProtocolTest, DirtyBytesCappedAtFramebuffer) {
  ProtoFixture f;
  VncConfig cfg;
  cfg.framebuffer = Bytes::Of(10000);
  VncProtocol vnc(f.sim, f.display, f.input, &f.tap, Rng(1), cfg);
  vnc.StartClientPull();
  for (int i = 0; i < 100; ++i) {
    vnc.SubmitDraw(DrawCommand::PutImage(BitmapRef::Make(100 + i, 200, 200, 0.5)));
  }
  f.sim.RunFor(Duration::Millis(150));
  vnc.StopClientPull();
  // One update, encoded from at most one framebuffer's worth of dirty pixels.
  EXPECT_EQ(vnc.updates_sent(), 1);
  EXPECT_LT(f.tap.payload_bytes(Channel::kDisplay),
            Bytes::Of(10000 + 16 + 16 * 12 + 100));
}

TEST(RelatedWorkComparisonTest, SlimRoughlyEquivalentToX) {
  // The paper's §7 placement: SLIM ~ X in network load, behind RDP.
  auto run = [](auto makeProto) {
    ProtoFixture f;
    auto proto = makeProto(f);
    Rng rng(9);
    for (int step = 0; step < 200; ++step) {
      proto->SubmitDraw(DrawCommand::Text(static_cast<int>(rng.NextBelow(20)) + 10));
      if (step % 3 == 0) {
        proto->SubmitDraw(DrawCommand::Rect(60, 20));
      }
      if (step % 10 == 0) {
        proto->SubmitDraw(
            DrawCommand::PutImage(BitmapRef::Make(1000 + step % 8, 32, 32, 0.6)));
      }
      proto->Flush();
    }
    return f.tap.counted_bytes(Channel::kDisplay).count();
  };
  int64_t x_bytes = run([](ProtoFixture& f) {
    return std::make_unique<XProtocol>(f.sim, f.display, f.input, &f.tap, Rng(3));
  });
  int64_t slim_bytes = run([](ProtoFixture& f) {
    return std::make_unique<SlimProtocol>(f.sim, f.display, f.input, &f.tap, Rng(3));
  });
  int64_t rdp_bytes = run([](ProtoFixture& f) {
    return std::make_unique<RdpProtocol>(f.sim, f.display, f.input, &f.tap, Rng(3));
  });
  // Same order of magnitude as X (within 3x either way), clearly behind RDP.
  EXPECT_LT(slim_bytes, x_bytes * 3);
  EXPECT_GT(slim_bytes, x_bytes / 3);
  EXPECT_GT(slim_bytes, rdp_bytes * 2);
}

}  // namespace
}  // namespace tcs
