#include "src/mem/disk.h"

#include <gtest/gtest.h>

namespace tcs {
namespace {

DiskConfig FixedTimingConfig() {
  DiskConfig cfg;
  cfg.positioning_mean = Duration::Millis(8);
  cfg.positioning_stddev = Duration::Zero();  // deterministic for exact assertions
  cfg.positioning_min = Duration::Millis(2);
  cfg.transfer_rate = BitsPerSecond::Mbps(40);  // 4 KiB page -> 820 us (rounded up)
  cfg.sequential_positioning_factor = 0.1;
  return cfg;
}

TEST(DiskTest, SinglePageReadLatency) {
  Simulator sim;
  Disk disk(sim, Rng(1), FixedTimingConfig());
  TimePoint done;
  disk.Read(1, [&] { done = sim.Now(); });
  sim.Run();
  // positioning 8000 us + transfer ceil(4096*8/40) = 820 us (per-us rounding).
  EXPECT_EQ(done, TimePoint::FromMicros(8820));
  EXPECT_EQ(disk.reads(), 1);
  EXPECT_EQ(disk.pages_read(), 1);
}

TEST(DiskTest, ClusteredPagesCheaperThanSeparateReads) {
  Simulator sim;
  Disk disk(sim, Rng(1), FixedTimingConfig());
  TimePoint clustered_done;
  disk.Read(8, [&] { clustered_done = sim.Now(); });
  sim.Run();

  Simulator sim2;
  Disk disk2(sim2, Rng(1), FixedTimingConfig());
  TimePoint separate_done;
  std::function<void(int)> chain = [&](int remaining) {
    disk2.Read(1, [&, remaining] {
      if (remaining > 1) {
        chain(remaining - 1);
      } else {
        separate_done = sim2.Now();
      }
    });
  };
  chain(8);
  sim2.Run();

  EXPECT_LT(clustered_done.ToMicros(), separate_done.ToMicros() / 2);
}

TEST(DiskTest, RequestsQueueFifo) {
  Simulator sim;
  Disk disk(sim, Rng(1), FixedTimingConfig());
  TimePoint first_done;
  TimePoint second_done;
  disk.Read(1, [&] { first_done = sim.Now(); });
  disk.Read(1, [&] { second_done = sim.Now(); });
  sim.Run();
  // Second waits for first: exactly twice the single-read latency.
  EXPECT_EQ(first_done, TimePoint::FromMicros(8820));
  EXPECT_EQ(second_done, TimePoint::FromMicros(17640));
}

TEST(DiskTest, WritesOccupyQueueAheadOfReads) {
  Simulator sim;
  Disk disk(sim, Rng(1), FixedTimingConfig());
  disk.Write(1);  // fire and forget
  TimePoint read_done;
  disk.Read(1, [&] { read_done = sim.Now(); });
  sim.Run();
  EXPECT_EQ(read_done, TimePoint::FromMicros(17640));
  EXPECT_EQ(disk.writes(), 1);
  EXPECT_EQ(disk.pages_written(), 1);
}

TEST(DiskTest, PositioningNeverBelowMinimum) {
  Simulator sim;
  DiskConfig cfg = FixedTimingConfig();
  cfg.positioning_mean = Duration::Millis(1);  // below the 2 ms floor
  cfg.positioning_stddev = Duration::Millis(5);
  Disk disk(sim, Rng(7), cfg);
  for (int i = 0; i < 50; ++i) {
    disk.Read(1, nullptr);
  }
  sim.Run();
  // 50 reads, each at least min positioning (2000) + transfer (820).
  EXPECT_GE(disk.total_busy(), Duration::Micros(50 * 2820));
}

TEST(DiskTest, BusyUntilTracksQueueDepth) {
  Simulator sim;
  Disk disk(sim, Rng(1), FixedTimingConfig());
  EXPECT_FALSE(disk.IsBusyAt(sim.Now()));
  disk.Read(1, [] {});
  EXPECT_TRUE(disk.IsBusyAt(sim.Now()));
  EXPECT_EQ(disk.busy_until(), TimePoint::FromMicros(8820));
  sim.Run();  // clock advances to the read completion
  EXPECT_FALSE(disk.IsBusyAt(sim.Now()));
}

TEST(DiskTest, RandomizedPositioningVaries) {
  Simulator sim;
  DiskConfig cfg = FixedTimingConfig();
  cfg.positioning_stddev = Duration::Millis(3);
  Disk disk(sim, Rng(99), cfg);
  std::vector<int64_t> completion_gaps;
  TimePoint last = TimePoint::Zero();
  for (int i = 0; i < 20; ++i) {
    disk.Read(1, [&] {
      completion_gaps.push_back((sim.Now() - last).ToMicros());
      last = sim.Now();
    });
  }
  sim.Run();
  bool all_same = true;
  for (size_t i = 1; i < completion_gaps.size(); ++i) {
    all_same = all_same && completion_gaps[i] == completion_gaps[0];
  }
  EXPECT_FALSE(all_same);
}

}  // namespace
}  // namespace tcs
