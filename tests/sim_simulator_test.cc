#include "src/sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/periodic.h"

namespace tcs {
namespace {

TEST(SimulatorTest, ClockAdvancesToEventTimes) {
  Simulator sim;
  std::vector<int64_t> times;
  sim.Schedule(Duration::Millis(5), [&] { times.push_back(sim.Now().ToMicros()); });
  sim.Schedule(Duration::Millis(1), [&] { times.push_back(sim.Now().ToMicros()); });
  sim.Run();
  EXPECT_EQ(times, (std::vector<int64_t>{1000, 5000}));
  EXPECT_EQ(sim.Now(), TimePoint::FromMicros(5000));
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.Schedule(Duration::Millis(i), [&] { ++fired; });
  }
  sim.RunUntil(TimePoint::FromMicros(5000));
  EXPECT_EQ(fired, 5);  // events at exactly the deadline fire
  EXPECT_EQ(sim.Now(), TimePoint::FromMicros(5000));
  sim.Run();
  EXPECT_EQ(fired, 10);
}

TEST(SimulatorTest, RunUntilAdvancesClockToDeadlineEvenWithoutEvents) {
  Simulator sim;
  sim.RunUntil(TimePoint::FromMicros(123456));
  EXPECT_EQ(sim.Now(), TimePoint::FromMicros(123456));
}

TEST(SimulatorTest, RunForIsRelative) {
  Simulator sim;
  sim.RunFor(Duration::Millis(10));
  sim.RunFor(Duration::Millis(10));
  EXPECT_EQ(sim.Now(), TimePoint::FromMicros(20000));
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) {
      sim.Schedule(Duration::Millis(1), chain);
    }
  };
  sim.Schedule(Duration::Millis(1), chain);
  sim.Run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.Now(), TimePoint::FromMicros(5000));
}

TEST(SimulatorTest, RequestStopHaltsRun) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(Duration::Millis(1), [&] {
    ++fired;
    sim.RequestStop();
  });
  sim.Schedule(Duration::Millis(2), [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  sim.Run();  // resumes with remaining events
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, CancelledEventDoesNotFire) {
  Simulator sim;
  bool fired = false;
  EventId id = sim.Schedule(Duration::Millis(1), [&] { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) {
    sim.Schedule(Duration::Millis(i + 1), [] {});
  }
  EXPECT_EQ(sim.Run(), 7u);
  EXPECT_EQ(sim.events_executed(), 7u);
}

TEST(PeriodicTaskTest, FiresAtFixedPeriod) {
  Simulator sim;
  std::vector<int64_t> fire_times;
  PeriodicTask task(sim, Duration::Millis(10),
                    [&] { fire_times.push_back(sim.Now().ToMicros()); });
  task.Start();
  sim.RunUntil(TimePoint::FromMicros(35000));
  EXPECT_EQ(fire_times, (std::vector<int64_t>{0, 10000, 20000, 30000}));
  task.Stop();
}

TEST(PeriodicTaskTest, InitialDelayOffsetsPhase) {
  Simulator sim;
  std::vector<int64_t> fire_times;
  PeriodicTask task(sim, Duration::Millis(10),
                    [&] { fire_times.push_back(sim.Now().ToMicros()); });
  task.Start(Duration::Millis(3));
  sim.RunUntil(TimePoint::FromMicros(25000));
  EXPECT_EQ(fire_times, (std::vector<int64_t>{3000, 13000, 23000}));
  task.Stop();
}

TEST(PeriodicTaskTest, StopFromWithinTick) {
  Simulator sim;
  int count = 0;
  PeriodicTask task(sim, Duration::Millis(1), [&] {
    if (++count == 3) {
      task.Stop();
    }
  });
  task.Start();
  sim.RunUntil(TimePoint::FromMicros(100000));
  EXPECT_EQ(count, 3);
  EXPECT_FALSE(task.IsRunning());
}

TEST(PeriodicTaskTest, DestructionCancelsPending) {
  Simulator sim;
  int count = 0;
  {
    PeriodicTask task(sim, Duration::Millis(1), [&] { ++count; });
    task.Start();
    sim.RunUntil(TimePoint::FromMicros(2500));
  }
  sim.RunUntil(TimePoint::FromMicros(10000));
  EXPECT_EQ(count, 3);  // fired at 0, 1ms, 2ms only
}

}  // namespace
}  // namespace tcs
