#include "src/obs/attribution.h"

#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/experiments.h"
#include "src/core/parallel_sweep.h"
#include "src/core/report.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/session/os_profile.h"

namespace tcs {
namespace {

using ProfileFactory = OsProfile (*)();

EndToEndResult RunAttributed(const OsProfile& profile, int sinks,
                             const FaultPlan& faults, LatencyAttribution& attribution,
                             uint64_t seed = 1,
                             Duration duration = Duration::Seconds(5)) {
  EndToEndOptions opt;
  opt.sinks = sinks;
  opt.duration = duration;
  opt.seed = seed;
  opt.faults = faults;
  ObsConfig obs;
  obs.attribution = &attribution;
  return RunEndToEndLatency(profile, opt, &obs);
}

FaultPlan LossyPlan() {
  FaultPlan plan;
  plan.link.loss_rate = 0.05;
  plan.link.flap_every = Duration::Millis(2000);
  plan.link.flap_duration = Duration::Millis(50);
  return plan;
}

// The tentpole invariant, as a property over the config matrix: for every committed
// interaction of every OS x load x fault configuration, the per-stage microseconds sum
// *exactly* to the end-to-end microseconds.
TEST(AttributionTest, StagesSumExactlyAcrossConfigMatrix) {
  const ProfileFactory profiles[] = {&OsProfile::Tse, &OsProfile::LinuxX,
                                     &OsProfile::LinuxSvr4};
  for (ProfileFactory make : profiles) {
    for (int sinks : {0, 5}) {
      for (bool faulted : {false, true}) {
        AttributionConfig cfg;
        cfg.keep_records = true;
        LatencyAttribution attribution(cfg);
        RunAttributed(make(), sinks, faulted ? LossyPlan() : FaultPlan{}, attribution);
        SCOPED_TRACE(make().name + (faulted ? " faulted" : " clean") + " sinks=" +
                     std::to_string(sinks));
        EXPECT_GT(attribution.committed(), 0);
        EXPECT_EQ(attribution.accounting_mismatches(), 0);
        for (const InteractionRecord& rec : attribution.records()) {
          ASSERT_EQ(rec.StageSum(), rec.total_us()) << "interaction " << rec.id;
          for (int s = 0; s < kAttrStageCount; ++s) {
            ASSERT_GE(rec.stage_us[s], 0) << "stage " << s;
          }
        }
      }
    }
  }
}

// Every minted id is either committed (as part of some batch) or still in flight when
// the run ends; commits can never exceed mints.
TEST(AttributionTest, MintedCoversCommittedKeystrokes) {
  AttributionConfig cfg;
  LatencyAttribution attribution(cfg);
  RunAttributed(OsProfile::Tse(), 0, FaultPlan{}, attribution);
  AttributionResult r = attribution.Collect();
  EXPECT_GT(r.keystrokes, 0);
  EXPECT_GE(r.keystrokes, r.interactions);  // batches coalesce >= 1 keystroke
  EXPECT_GE(static_cast<int64_t>(r.minted), r.keystrokes);
  // A clean fixed-duration run leaves at most a handful of keystrokes in flight.
  EXPECT_LE(static_cast<int64_t>(r.minted) - r.keystrokes, 8);
}

// Attribution is an observer: attaching an engine must not move a single simulated
// event or change any measured latency.
TEST(AttributionTest, ObserverDoesNotPerturbTheRun) {
  EndToEndOptions opt;
  opt.sinks = 2;
  opt.duration = Duration::Seconds(5);
  EndToEndResult bare = RunEndToEndLatency(OsProfile::Tse(), opt);
  LatencyAttribution attribution;
  ObsConfig obs;
  obs.attribution = &attribution;
  EndToEndResult observed = RunEndToEndLatency(OsProfile::Tse(), opt, &obs);
  EXPECT_EQ(bare.total_ms, observed.total_ms);
  EXPECT_EQ(bare.updates, observed.updates);
  EXPECT_EQ(bare.run.events_executed, observed.run.events_executed);
  EXPECT_FALSE(bare.blame.active);
  EXPECT_TRUE(observed.blame.active);
}

// The typing experiment (server-only pipeline, no thin client) must balance too: its
// interactions end at display emission, and the display/client stages stay zero.
TEST(AttributionTest, TypingUnderLoadBalances) {
  AttributionConfig cfg;
  cfg.keep_records = true;
  LatencyAttribution attribution(cfg);
  ObsConfig obs;
  obs.attribution = &attribution;
  TypingUnderLoadResult r = RunTypingUnderLoad(OsProfile::Tse(), 2, Duration::Seconds(5),
                                               /*seed=*/1, /*processors=*/1, &obs);
  EXPECT_TRUE(r.blame.active);
  EXPECT_GT(attribution.committed(), 0);
  EXPECT_EQ(attribution.accounting_mismatches(), 0);
  for (const InteractionRecord& rec : attribution.records()) {
    ASSERT_EQ(rec.StageSum(), rec.total_us());
  }
}

// The paging experiment's keystroke touches an evicted working set, so its blame must
// land in the mem-stall stage.
TEST(AttributionTest, PagingBillsMemStall) {
  LatencyAttribution attribution;
  ObsConfig obs;
  obs.attribution = &attribution;
  PagingLatencyResult r =
      RunPagingLatency(OsProfile::LinuxX(), /*full_demand=*/true, /*runs=*/1,
                       /*seed=*/1, EvictionPolicy::kGlobalLru, &obs);
  EXPECT_TRUE(r.blame.active);
  EXPECT_EQ(r.blame.accounting_mismatches, 0);
  const StageSummary& mem =
      r.blame.stages[static_cast<size_t>(AttrStage::kMemStall)];
  EXPECT_EQ(mem.stage, "mem-stall");
  EXPECT_GT(mem.total_us, 0);
}

// FaultPlan composition: under a lossy plan the input-retry penalty must surface in the
// retransmit stage — and nowhere on a clean run — while the books still balance.
TEST(AttributionTest, RetransmitStageGrowsWithLoss) {
  auto retransmit_total = [](double loss) {
    FaultPlan plan;
    plan.link.loss_rate = loss;
    LatencyAttribution attribution;
    RunAttributed(OsProfile::Tse(), 0, plan, attribution);
    AttributionResult r = attribution.Collect();
    EXPECT_EQ(r.accounting_mismatches, 0);
    return r.stages[static_cast<size_t>(AttrStage::kRetransmit)].total_us;
  };
  EXPECT_EQ(retransmit_total(0.0), 0);
  int64_t light = retransmit_total(0.05);
  int64_t heavy = retransmit_total(0.25);
  EXPECT_GT(light, 0);
  EXPECT_GT(heavy, light);
}

// The blame sweep as tcsctl runs it: every config gets its own engine and a
// position-derived seed. Serialized output must be byte-identical across reruns and
// across worker counts.
std::string SweepBlameJson(int workers) {
  const ProfileFactory profiles[] = {&OsProfile::Tse, &OsProfile::LinuxX,
                                     &OsProfile::LinuxSvr4};
  const int sinks[] = {0, 5};
  constexpr int kConfigs = 3 * 2 * 2;  // profiles x sinks x {clean, faulted}
  ParallelSweep sweep(workers);
  auto jsons = sweep.Map(kConfigs, [&](int i) {
    ProfileFactory make = profiles[i % 3];
    int load = sinks[(i / 3) % 2];
    bool faulted = i >= kConfigs / 2;
    LatencyAttribution attribution;
    EndToEndResult r =
        RunAttributed(make(), load, faulted ? LossyPlan() : FaultPlan{}, attribution,
                      SweepSeed(7, static_cast<uint64_t>(i)), Duration::Seconds(3));
    return ToJson(r.blame);
  });
  std::string all;
  for (const std::string& j : jsons) {
    all += j;
    all += '\n';
  }
  return all;
}

TEST(AttributionTest, BlameJsonByteIdenticalAcrossWorkerCounts) {
  std::string serial = SweepBlameJson(1);
  EXPECT_EQ(serial, SweepBlameJson(1));  // rerun
  EXPECT_EQ(serial, SweepBlameJson(4));
  EXPECT_EQ(serial, SweepBlameJson(8));
  EXPECT_NE(serial.find("\"accounting_mismatches\":0"), std::string::npos);
}

TEST(AttributionTest, CollectReportsFixedStageOrderAndTopStage) {
  LatencyAttribution attribution;
  RunAttributed(OsProfile::Tse(), 5, FaultPlan{}, attribution);
  AttributionResult r = attribution.Collect();
  // The 8 classic stages, in fixed order. The 9th (degradation-hold) only appears once
  // a DegradationController actually held the pipeline; this run has none.
  ASSERT_EQ(r.stages.size(), static_cast<size_t>(kAttrStageCount) - 1);
  for (size_t s = 0; s < r.stages.size(); ++s) {
    EXPECT_EQ(r.stages[s].stage, AttrStageName(static_cast<AttrStage>(s)));
  }
  EXPECT_FALSE(r.top_stage.empty());
  // Under heavy sink load the run queue dominates the keystroke's life.
  EXPECT_EQ(r.top_stage, "sched-wait");
  // Percentiles are nearest-rank: observed samples, so p50 <= p99 <= max.
  EXPECT_LE(r.p50_total_us, r.p99_total_us);
  EXPECT_LE(r.p99_total_us, r.max_total_us);
  // Stage totals tie out against the end-to-end total.
  int64_t stage_sum = 0;
  for (const StageSummary& s : r.stages) {
    stage_sum += s.total_us;
  }
  EXPECT_EQ(stage_sum, r.total_us);
}

// Pulls the integer value following `"key":` out of a single JSON event line.
int64_t JsonIntField(const std::string& line, const std::string& key) {
  size_t pos = line.find("\"" + key + "\":");
  EXPECT_NE(pos, std::string::npos) << key << " in " << line;
  if (pos == std::string::npos) {
    return -1;
  }
  return std::atoll(line.c_str() + pos + key.size() + 3);
}

// With a tracer attached, each interaction becomes a Perfetto flow: one "s" begin, "t"
// steps, and an "f" end (bound to the enclosing slice), all sharing the interaction id,
// spanning at least four component tracks (net, cpu, proto, client).
TEST(AttributionTest, FlowEventsLinkOneInteractionAcrossTracks) {
  TracerConfig tcfg;
  tcfg.categories = static_cast<uint32_t>(TraceCategory::kBlame);
  Tracer tracer(tcfg);
  AttributionConfig acfg;
  acfg.tracer = &tracer;
  LatencyAttribution attribution(acfg);
  ObsConfig obs;
  obs.tracer = &tracer;
  obs.attribution = &attribution;
  EndToEndOptions opt;
  opt.sinks = 0;
  opt.duration = Duration::Seconds(5);
  RunEndToEndLatency(OsProfile::Tse(), opt, &obs);

  std::string json = tracer.ToJson();
  std::map<int64_t, std::set<std::pair<int64_t, int64_t>>> tracks_by_flow;
  std::map<int64_t, std::string> phases_by_flow;  // concatenated in record order
  std::istringstream in(json);
  std::string line;
  while (std::getline(in, line)) {
    char ph = 0;
    for (char c : {'s', 't', 'f'}) {
      if (line.find(std::string("\"ph\":\"") + c + "\"") != std::string::npos) {
        ph = c;
      }
    }
    if (ph == 0) {
      continue;
    }
    EXPECT_NE(line.find("\"name\":\"interaction\""), std::string::npos);
    if (ph == 'f') {
      EXPECT_NE(line.find("\"bp\":\"e\""), std::string::npos);
    }
    int64_t id = JsonIntField(line, "id");
    tracks_by_flow[id].insert({JsonIntField(line, "pid"), JsonIntField(line, "tid")});
    phases_by_flow[id] += ph;
  }
  ASSERT_FALSE(tracks_by_flow.empty());
  for (const auto& [id, phases] : phases_by_flow) {
    EXPECT_EQ(phases.front(), 's') << "flow " << id;
    EXPECT_EQ(phases.back(), 'f') << "flow " << id;
    EXPECT_GE(phases.size(), 3u) << "flow " << id;
    EXPECT_GE(tracks_by_flow[id].size(), 4u) << "flow " << id;
  }
}

}  // namespace
}  // namespace tcs
