#include "src/util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace tcs {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, MeanVarianceMinMax) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(v);
  }
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic textbook set
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, SampleVarianceUsesNMinusOne) {
  RunningStats s;
  s.Add(1.0);
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 1.0);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 2.0);
}

TEST(RunningStatsTest, MergeMatchesCombinedStream) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 50; ++i) {
    double v = std::sin(i) * 10.0;
    (i % 2 == 0 ? a : b).Add(v);
    all.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmptySides) {
  RunningStats a;
  RunningStats empty;
  a.Add(5.0);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1);
  RunningStats c;
  c.Merge(a);
  EXPECT_EQ(c.count(), 1);
  EXPECT_DOUBLE_EQ(c.mean(), 5.0);
}

TEST(HistogramTest, BinsAndBounds) {
  Histogram h(0.0, 100.0, 10);
  h.Add(5.0);    // bin 0
  h.Add(15.0);   // bin 1
  h.Add(95.0);   // bin 9
  h.Add(-1.0);   // underflow
  h.Add(100.0);  // overflow (hi is exclusive)
  EXPECT_EQ(h.bin(0), 1);
  EXPECT_EQ(h.bin(1), 1);
  EXPECT_EQ(h.bin(9), 1);
  EXPECT_EQ(h.underflow(), 1);
  EXPECT_EQ(h.overflow(), 1);
  EXPECT_EQ(h.total(), 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 20.0);
}

TEST(HistogramTest, PercentileInterpolates) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) {
    h.Add(static_cast<double>(i) + 0.5);
  }
  EXPECT_NEAR(h.Percentile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.Percentile(0.9), 90.0, 1.5);
  EXPECT_NEAR(h.Percentile(0.0), 0.0, 1.5);
}

TEST(SampleSetTest, ExactPercentiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) {
    s.Add(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(s.Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(1.0), 100.0);
  EXPECT_NEAR(s.Percentile(0.5), 50.5, 1e-9);
  EXPECT_DOUBLE_EQ(s.Mean(), 50.5);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 100.0);
}

TEST(SampleSetTest, UnsortedInsertionOrder) {
  SampleSet s;
  s.Add(9.0);
  s.Add(1.0);
  s.Add(5.0);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 9.0);
  s.Add(0.5);  // add after a sorted read
  EXPECT_DOUBLE_EQ(s.Min(), 0.5);
}

}  // namespace
}  // namespace tcs
