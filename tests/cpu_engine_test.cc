#include "src/cpu/cpu.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/cpu/linux_scheduler.h"
#include "src/cpu/nt_scheduler.h"
#include "src/sim/simulator.h"

namespace tcs {
namespace {

CpuConfig NoSwitchCost() {
  CpuConfig cfg;
  cfg.context_switch_cost = Duration::Zero();
  return cfg;
}

TEST(CpuEngineTest, SingleWorkItemCompletesAfterItsCost) {
  Simulator sim;
  Cpu cpu(sim, std::make_unique<LinuxScheduler>(), NoSwitchCost());
  Thread* t = cpu.CreateThread("worker", ThreadClass::kBatch, 0);
  TimePoint done = TimePoint::Infinite();
  cpu.PostWork(*t, Duration::Millis(5), [&] { done = sim.Now(); });
  sim.Run();
  EXPECT_EQ(done, TimePoint::FromMicros(5000));
  EXPECT_EQ(t->state(), ThreadState::kBlocked);
  EXPECT_EQ(t->cpu_time(), Duration::Millis(5));
}

TEST(CpuEngineTest, ContextSwitchCostDelaysCompletion) {
  Simulator sim;
  CpuConfig cfg;
  cfg.context_switch_cost = Duration::Micros(100);
  Cpu cpu(sim, std::make_unique<LinuxScheduler>(), cfg);
  Thread* t = cpu.CreateThread("worker", ThreadClass::kBatch, 0);
  TimePoint done;
  cpu.PostWork(*t, Duration::Millis(1), [&] { done = sim.Now(); });
  sim.Run();
  EXPECT_EQ(done, TimePoint::FromMicros(1100));
  // Busy time includes the switch; thread CPU time does not.
  EXPECT_EQ(cpu.busy_time(), Duration::Micros(1100));
  EXPECT_EQ(t->cpu_time(), Duration::Millis(1));
}

TEST(CpuEngineTest, QuantumFragmentsLongBurst) {
  Simulator sim;
  Cpu cpu(sim, std::make_unique<LinuxScheduler>(), NoSwitchCost());  // 10 ms quantum
  Thread* t = cpu.CreateThread("long", ThreadClass::kBatch, 0);
  TimePoint done;
  cpu.PostWork(*t, Duration::Millis(25), [&] { done = sim.Now(); });
  sim.Run();
  EXPECT_EQ(done, TimePoint::FromMicros(25000));
  // 10 + 10 + 5: three dispatches even with no competition.
  EXPECT_EQ(t->dispatch_count(), 3);
}

TEST(CpuEngineTest, EqualThreadsRoundRobin) {
  Simulator sim;
  Cpu cpu(sim, std::make_unique<LinuxScheduler>(), NoSwitchCost());
  Thread* a = cpu.CreateThread("a", ThreadClass::kBatch, 0);
  Thread* b = cpu.CreateThread("b", ThreadClass::kBatch, 0);
  TimePoint a_done;
  TimePoint b_done;
  cpu.PostWork(*a, Duration::Millis(20), [&] { a_done = sim.Now(); });
  cpu.PostWork(*b, Duration::Millis(20), [&] { b_done = sim.Now(); });
  sim.Run();
  // Interleaved 10 ms quanta: a runs [0,10),[20,30); b runs [10,20),[30,40).
  EXPECT_EQ(a_done, TimePoint::FromMicros(30000));
  EXPECT_EQ(b_done, TimePoint::FromMicros(40000));
}

TEST(CpuEngineTest, QueuedWorkItemsRunBackToBack) {
  Simulator sim;
  CpuConfig cfg;
  cfg.context_switch_cost = Duration::Micros(100);
  Cpu cpu(sim, std::make_unique<LinuxScheduler>(), cfg);
  Thread* t = cpu.CreateThread("w", ThreadClass::kBatch, 0);
  std::vector<int64_t> completions;
  cpu.PostWork(*t, Duration::Millis(1), [&] { completions.push_back(sim.Now().ToMicros()); });
  cpu.PostWork(*t, Duration::Millis(1), [&] { completions.push_back(sim.Now().ToMicros()); });
  sim.Run();
  // One switch charge at dispatch; the second item continues without a new switch.
  EXPECT_EQ(completions, (std::vector<int64_t>{1100, 2100}));
}

TEST(CpuEngineTest, HigherPriorityWakePreemptsUnderNt) {
  Simulator sim;
  Cpu cpu(sim, std::make_unique<NtScheduler>(), NoSwitchCost());
  Thread* sink = cpu.CreateThread("sink", ThreadClass::kBatch, kNtBackgroundPriority);
  Thread* gui = cpu.CreateThread("gui", ThreadClass::kGui, kNtForegroundPriority);
  TimePoint gui_done;
  cpu.PostWork(*sink, Duration::Seconds(10));
  sim.Schedule(Duration::Millis(7), [&] {
    cpu.PostWork(*gui, Duration::Millis(2), [&] { gui_done = sim.Now(); },
                 WakeReason::kInputEvent);
  });
  sim.RunUntil(TimePoint::FromMicros(100000));
  // GUI boost (15) preempts the priority-8 sink immediately at 7 ms, runs 2 ms.
  EXPECT_EQ(gui_done, TimePoint::FromMicros(9000));
}

TEST(CpuEngineTest, PreemptedThreadResumesWithRemainingWork) {
  Simulator sim;
  Cpu cpu(sim, std::make_unique<NtScheduler>(), NoSwitchCost());
  Thread* sink = cpu.CreateThread("sink", ThreadClass::kBatch, kNtBackgroundPriority);
  Thread* gui = cpu.CreateThread("gui", ThreadClass::kGui, kNtForegroundPriority);
  TimePoint sink_done;
  cpu.PostWork(*sink, Duration::Millis(10), [&] { sink_done = sim.Now(); });
  sim.Schedule(Duration::Millis(4), [&] {
    cpu.PostWork(*gui, Duration::Millis(3), nullptr, WakeReason::kInputEvent);
  });
  sim.Run();
  // Sink: 4 ms before preemption + 3 ms GUI + remaining 6 ms => done at 13 ms.
  EXPECT_EQ(sink_done, TimePoint::FromMicros(13000));
}

TEST(CpuEngineTest, SpeedScalesWorkCost) {
  Simulator sim;
  CpuConfig cfg = NoSwitchCost();
  cfg.speed = 2.0;
  Cpu cpu(sim, std::make_unique<LinuxScheduler>(), cfg);
  Thread* t = cpu.CreateThread("w", ThreadClass::kBatch, 0);
  TimePoint done;
  cpu.PostWork(*t, Duration::Millis(10), [&] { done = sim.Now(); });
  sim.Run();
  EXPECT_EQ(done, TimePoint::FromMicros(5000));
}

TEST(CpuEngineTest, ZeroCostWorkCompletesImmediately) {
  Simulator sim;
  Cpu cpu(sim, std::make_unique<LinuxScheduler>(), NoSwitchCost());
  Thread* t = cpu.CreateThread("w", ThreadClass::kBatch, 0);
  bool fired = false;
  cpu.PostWork(*t, Duration::Zero(), [&] { fired = true; });
  sim.Run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.Now(), TimePoint::Zero());
}

TEST(CpuEngineTest, CompletionCallbackCanPostMoreWork) {
  Simulator sim;
  Cpu cpu(sim, std::make_unique<LinuxScheduler>(), NoSwitchCost());
  Thread* a = cpu.CreateThread("a", ThreadClass::kBatch, 0);
  Thread* b = cpu.CreateThread("b", ThreadClass::kBatch, 0);
  TimePoint b_done;
  cpu.PostWork(*a, Duration::Millis(2), [&] {
    cpu.PostWork(*b, Duration::Millis(3), [&] { b_done = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(b_done, TimePoint::FromMicros(5000));
}

TEST(CpuEngineTest, IdleWhenNoWork) {
  Simulator sim;
  Cpu cpu(sim, std::make_unique<LinuxScheduler>(), NoSwitchCost());
  cpu.CreateThread("t", ThreadClass::kBatch, 0);
  EXPECT_TRUE(cpu.IsIdle());
  sim.RunFor(Duration::Seconds(1));
  EXPECT_TRUE(cpu.IsIdle());
  EXPECT_EQ(cpu.busy_time(), Duration::Zero());
}

TEST(CpuEngineTest, SegmentObserverSeesAllBusyTime) {
  Simulator sim;
  Cpu cpu(sim, std::make_unique<LinuxScheduler>(), NoSwitchCost());
  Thread* t = cpu.CreateThread("w", ThreadClass::kBatch, 0);
  Duration observed = Duration::Zero();
  cpu.AddSegmentObserver(
      [&](TimePoint start, TimePoint end, const Thread&) { observed += end - start; });
  cpu.PostWork(*t, Duration::Millis(25));
  sim.Run();
  EXPECT_EQ(observed, Duration::Millis(25));
}

}  // namespace
}  // namespace tcs
