// Fault-injection integration tests: determinism of chaotic runs, the empty-plan
// identity, disconnect/reconnect semantics per protocol family, and the fault ledger.

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "src/core/experiments.h"
#include "src/core/parallel_sweep.h"
#include "src/core/report.h"
#include "src/proto/rdp_protocol.h"
#include "src/session/server.h"

namespace tcs {
namespace {

FaultPlan ChaoticPlan() {
  FaultPlan plan;
  plan.link.loss_rate = 0.01;
  plan.link.flap_every = Duration::Seconds(2);
  plan.link.flap_duration = Duration::Millis(50);
  plan.disk.stall_rate = 0.05;
  plan.session.disconnect_every = Duration::Seconds(5);
  plan.seed = 77;
  return plan;
}

// The deterministic fields of an end-to-end result (everything but wall_ms).
auto Fields(const EndToEndResult& r) {
  return std::tuple(r.input_net_ms, r.server_ms, r.display_net_ms, r.client_ms,
                    r.total_ms, r.updates, r.faults.active, r.faults.availability,
                    r.faults.frames_lost, r.faults.retransmissions, r.faults.disconnects,
                    r.faults.dropped_keystrokes, r.faults.disk_stalls,
                    r.run.events_executed, r.run.pending_events);
}

TEST(FaultInjectionTest, ChaoticRunIsDeterministicAcrossReruns) {
  EndToEndOptions opt;
  opt.duration = Duration::Seconds(10);
  opt.faults = ChaoticPlan();
  EndToEndResult a = RunEndToEndLatency(OsProfile::Tse(), opt);
  EndToEndResult b = RunEndToEndLatency(OsProfile::Tse(), opt);
  EXPECT_EQ(Fields(a), Fields(b));
  EXPECT_TRUE(a.faults.active);
}

TEST(FaultInjectionTest, EmptyPlanLeavesResultInactiveAndJsonUnchanged) {
  EndToEndOptions opt;
  opt.duration = Duration::Seconds(5);
  EndToEndResult r = RunEndToEndLatency(OsProfile::Tse(), opt);
  EXPECT_FALSE(r.faults.active);
  EXPECT_DOUBLE_EQ(r.faults.availability, 1.0);
  // An inactive ledger must not appear in the report, so fault-free JSON stays
  // byte-identical with pre-fault builds.
  EXPECT_EQ(ToJson(r).find("\"faults\""), std::string::npos);

  EndToEndOptions with_plan = opt;
  with_plan.faults = FaultPlan{};  // explicit empty plan == no plan
  EXPECT_EQ(Fields(r), Fields(RunEndToEndLatency(OsProfile::Tse(), with_plan)));
}

TEST(FaultInjectionTest, ActiveLedgerAppearsInJsonWithBoundedAvailability) {
  EndToEndOptions opt;
  opt.duration = Duration::Seconds(10);
  opt.faults = ChaoticPlan();
  EndToEndResult r = RunEndToEndLatency(OsProfile::Tse(), opt);
  EXPECT_TRUE(r.faults.active);
  EXPECT_GE(r.faults.availability, 0.0);
  EXPECT_LE(r.faults.availability, 1.0);
  EXPECT_LT(r.faults.availability, 1.0);  // flaps + disconnects cost uptime
  EXPECT_NE(ToJson(r).find("\"faults\""), std::string::npos);
}

TEST(FaultInjectionTest, LossMakesLatencyWorseNotBroken) {
  EndToEndOptions clean;
  clean.duration = Duration::Seconds(10);
  EndToEndResult base = RunEndToEndLatency(OsProfile::Tse(), clean);

  EndToEndOptions lossy = clean;
  lossy.faults.link.loss_rate = 0.05;
  EndToEndResult faulted = RunEndToEndLatency(OsProfile::Tse(), lossy);

  EXPECT_GT(faulted.faults.frames_lost + faulted.faults.frames_corrupted, 0u);
  EXPECT_GT(faulted.faults.retransmissions, 0u);
  EXPECT_GT(faulted.total_ms, base.total_ms);
  EXPECT_GT(faulted.updates, 0);  // the session stays usable
}

TEST(FaultInjectionTest, RdpSessionSurvivesReconnectWithCacheInvalidation) {
  Simulator sim;
  Server server(sim, OsProfile::Tse());  // RDP family
  server.StartDaemons();
  Session& session = server.Login();
  sim.RunFor(Duration::Seconds(2));

  auto& rdp = dynamic_cast<RdpProtocol&>(server.protocol());
  // Simulate display traffic having populated the client cache.
  rdp.bitmap_cache().Insert(0xABCD, Bytes::Of(4096));
  rdp.bitmap_cache().Insert(0xBEEF, Bytes::Of(4096));
  ASSERT_GT(rdp.bitmap_cache().entries(), 0u);

  server.Disconnect(session);
  EXPECT_FALSE(session.connected());
  server.Keystroke(session);
  sim.RunFor(Duration::Millis(100));
  EXPECT_EQ(session.dropped_keystrokes(), 1);

  server.Reconnect(session);
  EXPECT_TRUE(session.connected());
  // TSE semantics: the session survives server-side (no cold restart) but the client's
  // bitmap cache is stale and must be assumed empty.
  EXPECT_EQ(session.generation(), 0u);
  EXPECT_EQ(rdp.bitmap_cache().entries(), 0u);
  EXPECT_EQ(rdp.bitmap_cache().used(), Bytes::Zero());
  EXPECT_EQ(server.disconnects(), 1);
  sim.RunFor(Duration::Seconds(1));
  EXPECT_GT(server.session_downtime(), Duration::Zero());
}

TEST(FaultInjectionTest, XSessionRestartsColdOnReconnect) {
  Simulator sim;
  Server server(sim, OsProfile::LinuxX());  // X family: the login dies with the socket
  server.StartDaemons();
  Session& session = server.Login();
  sim.RunFor(Duration::Seconds(2));
  ASSERT_GT(session.working_set()->resident_pages(), 0u);

  server.Disconnect(session);
  server.Reconnect(session);
  // Cold restart: new generation, everything swapped out until re-faulted.
  EXPECT_EQ(session.generation(), 1u);
  EXPECT_EQ(session.working_set()->resident_pages(), 0u);

  // The session must still work after the restart: a keystroke pages back in and paints.
  bool painted = false;
  session.set_on_frame_painted([&](const KeystrokeLatency&) { painted = true; });
  sim.RunFor(Duration::Seconds(2));  // let the session-setup resend drain
  server.Keystroke(session);
  sim.RunFor(Duration::Seconds(5));
  EXPECT_TRUE(painted);
}

TEST(FaultInjectionTest, DaemonCrashesAreCountedAndRecovered) {
  Simulator sim;
  ServerConfig cfg;
  cfg.faults.session.daemon_crash_every = Duration::Seconds(3);
  cfg.faults.seed = 11;
  Server server(sim, OsProfile::Tse(), cfg);
  server.StartDaemons();
  server.Login();
  sim.RunUntil(TimePoint::Zero() + Duration::Seconds(30));
  EXPECT_GT(server.daemon_crashes(), 0);
  FaultStats stats = server.CollectFaultStats(Duration::Seconds(30));
  EXPECT_EQ(stats.daemon_crashes, static_cast<uint64_t>(server.daemon_crashes()));
}

TEST(FaultInjectionTest, DiskStallsShowUpInLedger) {
  Simulator sim;
  ServerConfig cfg;
  cfg.faults.disk.stall_rate = 0.5;
  cfg.faults.seed = 3;
  Server server(sim, OsProfile::LinuxX(), cfg);
  // Drive the server's paging disk directly: the injector the config wired in must
  // perturb requests and its counters must surface in the collected ledger.
  for (int i = 0; i < 100; ++i) {
    server.disk().Read(1, nullptr);
  }
  sim.Run();
  FaultStats stats = server.CollectFaultStats(Duration::Seconds(1));
  EXPECT_TRUE(stats.active);
  EXPECT_GT(stats.disk_stalls, 0u);
  EXPECT_GT(stats.disk_stall_rate, 0.2);
  EXPECT_LT(stats.disk_stall_rate, 0.8);

  // The same requests on a healthy disk finish sooner: stalls cost real service time.
  Simulator clean_sim;
  Server clean(clean_sim, OsProfile::LinuxX());
  for (int i = 0; i < 100; ++i) {
    clean.disk().Read(1, nullptr);
  }
  clean_sim.Run();
  EXPECT_GT(server.disk().total_busy(), clean.disk().total_busy());
}

// The deterministic fields of a chaos point (everything but run.wall_ms).
auto PointFields(const ChaosPoint& p) {
  return std::tuple(p.loss_rate, p.flap_ms, p.p50_ms, p.p99_ms, p.mean_ms,
                    p.perceptible_fraction, p.crosses_threshold, p.updates,
                    p.link_frames_sent, p.link_frames_delivered, p.link_frames_lost,
                    p.retransmissions, p.faults.availability, p.faults.frames_lost,
                    p.run.events_executed);
}

TEST(FaultInjectionTest, ChaosSweepIsWorkerCountInvariant) {
  auto sweep_with = [](int jobs) {
    ParallelSweep sweep(jobs);
    return sweep.Map(4, [](int i) {
      ChaosOptions opt;
      opt.loss_rate = 0.01 * (i % 2);
      opt.flap_every = Duration::Seconds(2);
      opt.flap_duration = Duration::Millis(50 * (i / 2));
      opt.duration = Duration::Seconds(5);
      opt.seed = SweepSeed(9, static_cast<uint64_t>(i));
      return RunChaosPoint(OsProfile::Tse(), opt);
    });
  };
  std::vector<ChaosPoint> serial = sweep_with(1);
  std::vector<ChaosPoint> parallel = sweep_with(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(PointFields(serial[i]), PointFields(parallel[i])) << "point " << i;
  }
}

TEST(FaultInjectionTest, ChaosPointCountersReconcile) {
  ChaosOptions opt;
  opt.loss_rate = 0.01;
  opt.flap_every = Duration::Seconds(2);
  opt.flap_duration = Duration::Millis(50);
  opt.duration = Duration::Seconds(20);
  ChaosPoint p = RunChaosPoint(OsProfile::Tse(), opt);
  EXPECT_EQ(p.link_frames_sent, p.link_frames_delivered + p.link_frames_lost);
  EXPECT_GT(p.retransmissions, 0);
  EXPECT_GT(p.updates, 0);
  EXPECT_GE(p.faults.availability, 0.0);
  EXPECT_LE(p.faults.availability, 1.0);
}

}  // namespace
}  // namespace tcs
