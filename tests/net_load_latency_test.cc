// Integration tests for the §6.2 load-to-latency mapping: traffic generator + ping over a
// shared 10 Mbps link. These assert the *shapes* of Figures 8 and 9 — flat RTT while
// unsaturated, explosion near saturation — not absolute values.

#include <gtest/gtest.h>

#include "src/net/link.h"
#include "src/net/ping.h"
#include "src/net/traffic_gen.h"

namespace tcs {
namespace {

struct RttResult {
  double mean_ms;
  double variance;
};

RttResult MeasureRtt(double offered_mbps, Duration window = Duration::Seconds(30)) {
  Simulator sim;
  Link link(sim);
  PoissonTrafficGenerator gen(sim, Rng(42), link, BitsPerSecond::MbpsF(offered_mbps),
                              Bytes::Of(1500));
  Ping ping(sim, link);
  if (offered_mbps > 0.0) {
    gen.Start();
  }
  ping.Start();
  sim.RunUntil(TimePoint::Zero() + window);
  gen.Stop();
  ping.Stop();
  sim.RunFor(Duration::Seconds(2));  // drain in-flight echoes
  return RttResult{ping.rtt().mean(), ping.rtt().variance()};
}

TEST(PoissonTrafficGeneratorTest, OfferedRateApproximatesTarget) {
  Simulator sim;
  Link link(sim);
  PoissonTrafficGenerator gen(sim, Rng(7), link, BitsPerSecond::Mbps(5), Bytes::Of(1500));
  gen.Start();
  sim.RunUntil(TimePoint::Zero() + Duration::Seconds(20));
  gen.Stop();
  // 5 Mbps for 20 s = 12.5 MB = ~8333 frames of 1500 B.
  EXPECT_NEAR(static_cast<double>(gen.frames_offered()), 8333.0, 8333.0 * 0.05);
}

TEST(PingTest, UnloadedRttIsNearMinimum) {
  RttResult r = MeasureRtt(0.0);
  // Two 64-byte traversals: 2 * (52 us serialization + 50 us propagation) ~ 0.2 ms.
  EXPECT_LT(r.mean_ms, 0.5);
  EXPECT_LT(r.variance, 0.01);
}

TEST(PingTest, AllEchoesReturnWhileUnsaturated) {
  Simulator sim;
  Link link(sim);
  Ping ping(sim, link);
  ping.Start();
  sim.RunUntil(TimePoint::Zero() + Duration::Seconds(10));
  ping.Stop();
  sim.RunFor(Duration::Seconds(1));
  EXPECT_EQ(ping.sent(), ping.received());
  EXPECT_EQ(ping.sent(), 101);  // one per 100 ms inclusive of t=0
}

TEST(LoadLatencyShapeTest, RttFlatUntilNearSaturation) {
  RttResult light = MeasureRtt(2.0);
  RttResult medium = MeasureRtt(6.0);
  // Below ~60% utilization RTT stays within a few service times.
  EXPECT_LT(light.mean_ms, 3.0);
  EXPECT_LT(medium.mean_ms, 8.0);
}

TEST(LoadLatencyShapeTest, RttExplodesNearSaturation) {
  RttResult light = MeasureRtt(2.0);
  RttResult saturated = MeasureRtt(9.6);
  // The paper reports ~55 ms at 9.6 Mbps vs single-digit values unloaded: an order of
  // magnitude. Require at least 10x.
  EXPECT_GT(saturated.mean_ms, light.mean_ms * 10.0);
  EXPECT_GT(saturated.mean_ms, 10.0);
}

TEST(LoadLatencyShapeTest, JitterExplodesNearSaturation) {
  RttResult light = MeasureRtt(2.0);
  RttResult saturated = MeasureRtt(9.6);
  EXPECT_GT(saturated.variance, light.variance * 100.0);
}

TEST(LoadLatencyShapeTest, RttMonotoneInLoad) {
  double prev = 0.0;
  for (double mbps : {0.0, 4.0, 8.0, 9.6}) {
    RttResult r = MeasureRtt(mbps, Duration::Seconds(20));
    EXPECT_GE(r.mean_ms, prev * 0.8) << "at " << mbps << " Mbps";  // allow sampling noise
    prev = r.mean_ms;
  }
}

}  // namespace
}  // namespace tcs
