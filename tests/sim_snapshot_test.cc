// Snapshot layer: primitive encodings, framing, and the round-trip property.
//
// The load-bearing test is SnapshotOfRestoredRunIsByteIdentical: for every seed,
// snapshot a mid-flight consolidation run, restore it into a freshly constructed run,
// snapshot again, and require the two blobs byte-equal — compared section by section so
// a divergence names the guilty subsystem ("server.pager differs") instead of "bytes
// differ". Restore-then-save being the identity is what makes resume-vs-cold
// equivalence (tests/core_checkpoint_diff_test.cc) composable: any state a component
// forgets to serialize, or restores into a different shape, shows up here first.

#include "src/sim/snapshot.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "src/core/checkpoint.h"
#include "src/obs/slo.h"
#include "src/session/os_profile.h"
#include "src/session/server.h"
#include "src/sim/simulator.h"

namespace tcs {
namespace {

TEST(SnapshotPrimitives, RoundTripAllEncodings) {
  SnapshotWriter w;
  w.U8(0x7f);
  w.Bool(true);
  w.Bool(false);
  w.U32(0xdeadbeef);
  w.U64(0);
  w.U64(127);
  w.U64(128);  // LEB128 continuation boundary
  w.U64(0xffffffffffffffffull);
  w.I64(0);
  w.I64(-1);
  w.I64(1);
  w.I64(INT64_MIN);
  w.I64(INT64_MAX);
  w.F64(0.0);
  w.F64(-0.0);
  w.F64(3.141592653589793);
  w.Str(std::string("hello"));
  w.Str("");
  w.Time(TimePoint::FromMicros(123456789));
  w.Dur(Duration::Micros(-42));
  std::vector<uint8_t> blob = w.Finish();

  SnapshotReader r(blob);
  EXPECT_EQ(r.U8(), 0x7f);
  EXPECT_TRUE(r.Bool());
  EXPECT_FALSE(r.Bool());
  EXPECT_EQ(r.U32(), 0xdeadbeefu);
  EXPECT_EQ(r.U64(), 0u);
  EXPECT_EQ(r.U64(), 127u);
  EXPECT_EQ(r.U64(), 128u);
  EXPECT_EQ(r.U64(), 0xffffffffffffffffull);
  EXPECT_EQ(r.I64(), 0);
  EXPECT_EQ(r.I64(), -1);
  EXPECT_EQ(r.I64(), 1);
  EXPECT_EQ(r.I64(), INT64_MIN);
  EXPECT_EQ(r.I64(), INT64_MAX);
  EXPECT_EQ(r.F64(), 0.0);
  {
    double neg_zero = r.F64();
    EXPECT_EQ(neg_zero, 0.0);
    EXPECT_TRUE(std::signbit(neg_zero));  // bit-pattern, not value, round-trips
  }
  EXPECT_EQ(r.F64(), 3.141592653589793);
  EXPECT_EQ(r.Str(), "hello");
  EXPECT_EQ(r.Str(), "");
  EXPECT_EQ(r.Time(), TimePoint::FromMicros(123456789));
  EXPECT_EQ(r.Dur(), Duration::Micros(-42));
  EXPECT_TRUE(r.AtEnd());
}

TEST(SnapshotPrimitives, SectionsNestAndCheckTags) {
  SnapshotWriter w;
  w.BeginSection(0x10);
  w.U64(1);
  w.BeginSection(0x11);
  w.U64(2);
  w.EndSection();
  w.EndSection();
  w.BeginSection(0x20);
  w.U64(3);
  w.EndSection();
  std::vector<uint8_t> blob = w.Finish();

  SnapshotReader r(blob);
  r.EnterSection(0x10);
  EXPECT_EQ(r.U64(), 1u);
  r.EnterSection(0x11);
  EXPECT_EQ(r.U64(), 2u);
  r.LeaveSection();
  r.LeaveSection();
  uint32_t tag = 0;
  EXPECT_TRUE(r.PeekSection(&tag));
  EXPECT_EQ(tag, 0x20u);
  EXPECT_THROW(r.EnterSection(0x21), SnapshotError);  // tag mismatch names the frame
  r.SkipSection();
  EXPECT_TRUE(r.AtEnd());

  std::map<uint32_t, std::pair<size_t, size_t>> spans = SnapshotSectionSpans(blob);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_TRUE(spans.count(0x10));
  EXPECT_TRUE(spans.count(0x20));
}

TEST(SnapshotPrimitives, LeaveSectionRejectsUnderconsumedFrame) {
  SnapshotWriter w;
  w.BeginSection(0x10);
  w.U64(1);
  w.U64(2);
  w.EndSection();
  std::vector<uint8_t> blob = w.Finish();
  SnapshotReader r(blob);
  r.EnterSection(0x10);
  r.U64();
  EXPECT_THROW(r.LeaveSection(), SnapshotError);  // schema drift: one value unread
}

TEST(SnapshotPrimitives, CorruptionIsRejectedUpFront) {
  SnapshotWriter w;
  w.BeginSection(0x10);
  for (uint64_t i = 0; i < 64; ++i) {
    w.U64(i * i);
  }
  w.EndSection();
  std::vector<uint8_t> blob = w.Finish();

  std::vector<uint8_t> flipped = blob;
  flipped[flipped.size() / 2] ^= 0x40;
  EXPECT_THROW(SnapshotReader r(flipped), SnapshotError);

  std::vector<uint8_t> truncated(blob.begin(), blob.end() - 3);
  EXPECT_THROW(SnapshotReader r(truncated), SnapshotError);
}

TEST(SnapshotPrimitives, ResumeKeyRoundTrip) {
  SnapshotWriter w;
  ResumeKey::Make(7, 1, 2, 3, 4).SaveTo(w);
  ResumeKey{}.SaveTo(w);
  std::vector<uint8_t> blob = w.Finish();
  SnapshotReader r(blob);
  ResumeKey k = ResumeKey::LoadFrom(r);
  EXPECT_EQ(k.kind, 7u);
  EXPECT_EQ(k.n, 4u);
  EXPECT_EQ(k.arg(0), 1u);
  EXPECT_EQ(k.arg(3), 4u);
  EXPECT_TRUE(ResumeKey::LoadFrom(r).empty());
}

// ---------------------------------------------------------------------------
// The round-trip property over full consolidation runs.

ConsolidationOptions SmallRun(uint64_t seed) {
  ConsolidationOptions o;
  o.users = 3;
  o.duration = Duration::Seconds(2);
  o.seed = seed;
  o.ram = Bytes::MiB(48);  // small enough that the login storm pages
  o.burst_cpu = Duration::Millis(100);
  o.burst_period = Duration::Seconds(2);
  o.sinks = 1;
  return o;
}

// Byte-compares two snapshots; on divergence, names each differing subsystem section.
void ExpectSameSnapshot(const std::vector<uint8_t>& a, const std::vector<uint8_t>& b) {
  if (a == b) {
    return;
  }
  auto sa = SnapshotSectionSpans(a);
  auto sb = SnapshotSectionSpans(b);
  for (const auto& [tag, span] : sa) {
    auto it = sb.find(tag);
    if (it == sb.end()) {
      ADD_FAILURE() << "section " << CheckpointSectionName(tag)
                    << " missing from the restored run's snapshot";
      continue;
    }
    const auto& other = it->second;
    bool same = (span.second - span.first) == (other.second - other.first) &&
                std::equal(a.begin() + static_cast<ptrdiff_t>(span.first),
                           a.begin() + static_cast<ptrdiff_t>(span.second),
                           b.begin() + static_cast<ptrdiff_t>(other.first));
    EXPECT_TRUE(same) << "section " << CheckpointSectionName(tag)
                      << " diverges after restore";
  }
  for (const auto& [tag, span] : sb) {
    if (!sa.count(tag)) {
      ADD_FAILURE() << "restored run's snapshot grew extra section "
                    << CheckpointSectionName(tag);
    }
  }
  ADD_FAILURE() << "snapshots differ (sizes " << a.size() << " vs " << b.size() << ")";
}

TEST(SnapshotRoundTrip, SnapshotOfRestoredRunIsByteIdentical) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ConsolidationOptions options = SmallRun(seed);
    ConsolidationRun original(OsProfile::Tse(), options);
    original.RunUntil(TimePoint::Zero() + Duration::Millis(1500));
    std::vector<uint8_t> first = original.Snapshot();

    ConsolidationRun restored(OsProfile::Tse(), options);
    restored.Restore(first);
    std::vector<uint8_t> second = restored.Snapshot();
    ExpectSameSnapshot(first, second);
  }
}

TEST(SnapshotRoundTrip, CapturePointsAcrossThePhases) {
  // Login storm (pre-typing), first keystrokes + page-ins, steady state: the pending
  // continuation mix differs at each point; all must survive save-restore-save.
  for (int64_t ms : {200, 1040, 2500}) {
    SCOPED_TRACE("capture at " + std::to_string(ms) + " ms");
    ConsolidationOptions options = SmallRun(7);
    ConsolidationRun original(OsProfile::Tse(), options);
    original.RunUntil(TimePoint::Zero() + Duration::Millis(ms));
    std::vector<uint8_t> first = original.Snapshot();

    ConsolidationRun restored(OsProfile::Tse(), options);
    restored.Restore(first);
    ExpectSameSnapshot(first, restored.Snapshot());
  }
}

TEST(SnapshotRoundTrip, SloWatchdogAndWanStateRoundTrip) {
  ConsolidationOptions options = SmallRun(3);
  options.wan = WanProfileByName("dsl");
  options.degrade = true;
  SloSpec spec;
  spec.max_worst_p99_ms = 5000.0;  // present but far away: exercises the watchdog path
  ObsConfig obs;
  obs.slo = &spec;

  ConsolidationRun original(OsProfile::Tse(), options, &obs);
  original.RunUntil(TimePoint::Zero() + Duration::Millis(2200));
  std::vector<uint8_t> first = original.Snapshot();

  ObsConfig obs2;
  obs2.slo = &spec;
  ConsolidationRun restored(OsProfile::Tse(), options, &obs2);
  restored.Restore(first);
  ExpectSameSnapshot(first, restored.Snapshot());
}

TEST(SnapshotRoundTrip, TopLevelSectionsAreNamed) {
  ConsolidationOptions options = SmallRun(1);
  ConsolidationRun run(OsProfile::Tse(), options);
  run.RunUntil(TimePoint::Zero() + Duration::Millis(1200));
  std::vector<uint8_t> blob = run.Snapshot();
  auto spans = SnapshotSectionSpans(blob);
  EXPECT_GE(spans.size(), 15u);  // kernel + 13 server sections + driver
  EXPECT_STREQ(CheckpointSectionName(1), "kernel");
  EXPECT_STREQ(CheckpointSectionName(kCheckpointDriverSection), "driver");
  int named = 0;
  for (const auto& [tag, span] : spans) {
    std::string name = CheckpointSectionName(tag);
    EXPECT_NE(name, "server.?") << "unnamed top-level section tag " << tag;
    named += name != "server.?";
  }
  EXPECT_GE(named, 15);
}

TEST(SnapshotRoundTrip, TopologyMismatchFailsLoudly) {
  ConsolidationOptions options = SmallRun(5);
  ConsolidationRun original(OsProfile::Tse(), options);
  original.RunUntil(TimePoint::Zero() + Duration::Millis(1500));
  std::vector<uint8_t> blob = original.Snapshot();

  {
    ConsolidationOptions wrong = options;
    wrong.users = 4;  // snapshot has 3 sessions
    ConsolidationRun target(OsProfile::Tse(), wrong);
    EXPECT_THROW(target.Restore(blob), SnapshotError);
  }
  {
    ConsolidationOptions wrong = options;
    wrong.burst_cpu = Duration::Zero();  // snapshot's users carry burst tasks
    ConsolidationRun target(OsProfile::Tse(), wrong);
    EXPECT_THROW(target.Restore(blob), SnapshotError);
  }
  {
    SloSpec spec;
    spec.max_worst_p99_ms = 5000.0;
    ObsConfig obs;
    obs.slo = &spec;  // snapshot has no watchdog section
    ConsolidationRun target(OsProfile::Tse(), options, &obs);
    EXPECT_THROW(target.Restore(blob), SnapshotError);
  }
}

}  // namespace
}  // namespace tcs
