#include "src/sim/time.h"

#include <gtest/gtest.h>

namespace tcs {
namespace {

TEST(DurationTest, FactoryConversions) {
  EXPECT_EQ(Duration::Micros(1500).ToMicros(), 1500);
  EXPECT_EQ(Duration::Millis(3).ToMicros(), 3000);
  EXPECT_EQ(Duration::Seconds(2).ToMicros(), 2000000);
  EXPECT_DOUBLE_EQ(Duration::Millis(1500).ToSecondsF(), 1.5);
  EXPECT_DOUBLE_EQ(Duration::Micros(2500).ToMillisF(), 2.5);
  EXPECT_EQ(Duration::SecondsF(0.25).ToMicros(), 250000);
}

TEST(DurationTest, Arithmetic) {
  Duration a = Duration::Millis(10);
  Duration b = Duration::Millis(4);
  EXPECT_EQ((a + b).ToMicros(), 14000);
  EXPECT_EQ((a - b).ToMicros(), 6000);
  EXPECT_EQ((a * 3).ToMicros(), 30000);
  EXPECT_EQ((3 * a).ToMicros(), 30000);
  EXPECT_EQ((a / 2).ToMicros(), 5000);
  EXPECT_DOUBLE_EQ(a / b, 2.5);
  EXPECT_EQ((-a).ToMicros(), -10000);
  a += b;
  EXPECT_EQ(a.ToMicros(), 14000);
  a -= b;
  EXPECT_EQ(a.ToMicros(), 10000);
}

TEST(DurationTest, ScalarDoubleMultiply) {
  EXPECT_EQ((Duration::Millis(10) * 0.5).ToMicros(), 5000);
  EXPECT_EQ((Duration::Millis(10) * 1.5).ToMicros(), 15000);
}

TEST(DurationTest, Comparisons) {
  EXPECT_LT(Duration::Millis(1), Duration::Millis(2));
  EXPECT_EQ(Duration::Millis(1), Duration::Micros(1000));
  EXPECT_GT(Duration::Infinite(), Duration::Seconds(1000000));
  EXPECT_TRUE(Duration::Zero().IsZero());
  EXPECT_FALSE(Duration::Micros(1).IsZero());
  EXPECT_TRUE(Duration::Infinite().IsInfinite());
}

TEST(DurationTest, ToString) {
  EXPECT_EQ(Duration::Zero().ToString(), "0us");
  EXPECT_EQ(Duration::Micros(17).ToString(), "17us");
  EXPECT_EQ(Duration::Millis(250).ToString(), "250ms");
  EXPECT_EQ(Duration::Micros(1500).ToString(), "1.500ms");
  EXPECT_EQ(Duration::Seconds(2).ToString(), "2s");
  EXPECT_EQ(Duration::Micros(2500000).ToString(), "2.500s");
  EXPECT_EQ(Duration::Millis(-5).ToString(), "-5ms");
  EXPECT_EQ(Duration::Infinite().ToString(), "inf");
}

TEST(TimePointTest, ArithmeticWithDuration) {
  TimePoint t = TimePoint::FromMicros(1000);
  EXPECT_EQ((t + Duration::Millis(1)).ToMicros(), 2000);
  EXPECT_EQ((t - Duration::Micros(500)).ToMicros(), 500);
  EXPECT_EQ((TimePoint::FromMicros(5000) - t).ToMicros(), 4000);
  t += Duration::Millis(2);
  EXPECT_EQ(t.ToMicros(), 3000);
}

TEST(TimePointTest, Ordering) {
  EXPECT_LT(TimePoint::Zero(), TimePoint::FromMicros(1));
  EXPECT_EQ(TimePoint::Zero().ToMicros(), 0);
  EXPECT_GT(TimePoint::Infinite(), TimePoint::FromMicros(1) + Duration::Seconds(1000));
}

}  // namespace
}  // namespace tcs
