#include "src/obs/slo.h"

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/sim/simulator.h"

namespace tcs {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

struct TempDir {
  TempDir() {
    path = (std::filesystem::temp_directory_path() /
            ("tcs_slo_test_" + std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  std::string path;
};

TEST(SloSpecTest, DefaultSpecChecksNothing) {
  SloSpec spec;
  EXPECT_FALSE(spec.Any());
  spec.max_worst_p99_ms = 50.0;
  EXPECT_TRUE(spec.Any());
  SloSpec starved;
  starved.max_starved_fraction = 0.0;  // zero is a real limit for the fraction
  EXPECT_TRUE(starved.Any());
}

TEST(SloWatchdogTest, PassingRunReportsEveryObjectiveInFixedOrder) {
  Simulator sim;
  FlightRecorder recorder;
  SloSpec spec;
  spec.max_worst_p99_ms = 100.0;
  spec.max_starved_fraction = 0.25;
  spec.min_availability = 0.9;
  spec.max_link_backlog_bytes = 1 << 20;
  SloWatchdog watchdog(sim, spec, &recorder, nullptr, nullptr);
  watchdog.SetWorstP99Source([] { return 12.0; });
  watchdog.SetStarvationSource([] { return 0.0; });
  watchdog.SetLinkBacklogSource([] { return int64_t{4096}; });
  watchdog.Start();
  sim.RunUntil(TimePoint::FromMicros(1'000'000));
  SloReport report = watchdog.FinishRun(0.99);
  EXPECT_TRUE(report.active);
  EXPECT_TRUE(report.passed);
  EXPECT_EQ(report.violated_at_us, -1);
  ASSERT_EQ(report.objectives.size(), 4u);
  EXPECT_EQ(report.objectives[0].objective, "worst_p99_ms");
  EXPECT_EQ(report.objectives[1].objective, "starved_fraction");
  EXPECT_EQ(report.objectives[2].objective, "availability");
  EXPECT_EQ(report.objectives[3].objective, "link_backlog_bytes");
  EXPECT_FALSE(recorder.frozen());
}

TEST(SloWatchdogTest, LiveP99ViolationFreezesAtFirstFailingCheck) {
  Simulator sim;
  FlightRecorder recorder;
  SloSpec spec;
  spec.max_worst_p99_ms = 50.0;
  spec.check_period = Duration::Millis(100);
  SloWatchdog watchdog(sim, spec, &recorder, nullptr, nullptr);
  // The p99 crosses the limit somewhere in (300 ms, 400 ms]; the 400 ms check is the
  // first to see it.
  watchdog.SetWorstP99Source(
      [&sim] { return sim.Now().ToMicros() > 300'000 ? 80.0 : 10.0; });
  watchdog.Start();
  sim.RunUntil(TimePoint::FromMicros(1'000'000));
  EXPECT_TRUE(watchdog.violated());
  EXPECT_TRUE(recorder.frozen());
  EXPECT_EQ(recorder.frozen_at().ToMicros(), 400'000);
  SloReport report = watchdog.FinishRun();
  EXPECT_FALSE(report.passed);
  EXPECT_EQ(report.violated_at_us, 400'000);
  EXPECT_EQ(report.violating_objective, "worst_p99_ms");
}

TEST(SloWatchdogTest, EndOfRunStarvationFailureFreezesLate) {
  Simulator sim;
  FlightRecorder recorder;
  SloSpec spec;
  spec.max_starved_fraction = 0.1;
  SloWatchdog watchdog(sim, spec, &recorder, nullptr, nullptr);
  watchdog.SetStarvationSource([] { return 0.5; });
  watchdog.Start();
  sim.RunUntil(TimePoint::FromMicros(2'000'000));
  // Starvation is a whole-run objective: nothing trips during the run.
  EXPECT_FALSE(watchdog.violated());
  SloReport report = watchdog.FinishRun();
  EXPECT_FALSE(report.passed);
  EXPECT_EQ(report.violating_objective, "starved_fraction");
  EXPECT_EQ(report.violated_at_us, 2'000'000);
  EXPECT_TRUE(recorder.frozen());
}

TEST(SloWatchdogTest, AvailabilityComesFromFinishRunArgument) {
  Simulator sim;
  FlightRecorder recorder;
  SloSpec spec;
  spec.min_availability = 0.95;
  SloWatchdog watchdog(sim, spec, &recorder, nullptr, nullptr);
  watchdog.Start();
  sim.RunUntil(TimePoint::FromMicros(100'000));
  SloReport report = watchdog.FinishRun(0.8);
  EXPECT_FALSE(report.passed);
  EXPECT_EQ(report.violating_objective, "availability");
  ASSERT_EQ(report.objectives.size(), 1u);
  EXPECT_DOUBLE_EQ(report.objectives[0].observed, 0.8);
}

TEST(SloWatchdogTest, BacklogObjectiveReportsThePeak) {
  Simulator sim;
  FlightRecorder recorder;
  SloSpec spec;
  spec.max_link_backlog_bytes = 10'000;
  spec.check_period = Duration::Millis(100);
  SloWatchdog watchdog(sim, spec, &recorder, nullptr, nullptr);
  // Rises to a peak mid-run and drains; the peak is what the report must show.
  watchdog.SetLinkBacklogSource([&sim] {
    int64_t t_ms = sim.Now().ToMicros() / 1000;
    return t_ms == 500 ? int64_t{9000} : int64_t{1000};
  });
  watchdog.Start();
  sim.RunUntil(TimePoint::FromMicros(1'000'000));
  SloReport report = watchdog.FinishRun();
  EXPECT_TRUE(report.passed);  // 9000 < 10000: peak approached but never crossed
  ASSERT_EQ(report.objectives.size(), 1u);
  EXPECT_DOUBLE_EQ(report.objectives[0].observed, 9000.0);
}

TEST(SloWatchdogTest, ViolationSnapshotsGaugesAndWritesBundle) {
  TempDir tmp;
  auto run_once = [&tmp](const std::string& name) {
    Simulator sim;
    FlightRecorder recorder;
    MetricsRegistry metrics;
    metrics.AddGauge("resident_mib", [] { return 37.5; });
    SloSpec spec;
    spec.max_worst_p99_ms = 50.0;
    spec.name = name;
    spec.out_dir = tmp.path;
    SloWatchdog watchdog(sim, spec, &recorder, &metrics, nullptr);
    watchdog.SetWorstP99Source(
        [&sim] { return sim.Now().ToMicros() >= 500'000 ? 99.0 : 1.0; });
    recorder.Instant(FlightComponent::kSession, "keystroke", TimePoint::FromMicros(1));
    watchdog.Start();
    sim.RunUntil(TimePoint::FromMicros(1'000'000));
    return watchdog.FinishRun();
  };
  SloReport report = run_once("case_a");
  ASSERT_EQ(report.postmortems.size(), 2u);
  EXPECT_EQ(report.postmortems[0], tmp.path + "/case_a.trace.json");
  EXPECT_EQ(report.postmortems[1], tmp.path + "/case_a.postmortem.json");
  std::string trace = ReadFile(report.postmortems[0]);
  std::string pm = ReadFile(report.postmortems[1]);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("slo-violation"), std::string::npos);
  EXPECT_NE(pm.find("\"violating_objective\":\"worst_p99_ms\""), std::string::npos);
  EXPECT_NE(pm.find("\"name\":\"resident_mib\""), std::string::npos);
  EXPECT_NE(pm.find("\"window\":{"), std::string::npos);

  // Identical spec + identical virtual-time history => byte-identical bundle.
  SloReport rerun = run_once("case_b");
  EXPECT_EQ(trace, ReadFile(rerun.postmortems[0]));
  std::string pm_b = ReadFile(rerun.postmortems[1]);
  EXPECT_NE(pm_b.find("\"slo\":\"case_b\""), std::string::npos);
}

TEST(SloWatchdogTest, NoBundleWithoutOutDir) {
  Simulator sim;
  FlightRecorder recorder;
  SloSpec spec;
  spec.max_worst_p99_ms = 1.0;
  SloWatchdog watchdog(sim, spec, &recorder, nullptr, nullptr);
  watchdog.SetWorstP99Source([] { return 100.0; });
  watchdog.Start();
  sim.RunUntil(TimePoint::FromMicros(200'000));
  SloReport report = watchdog.FinishRun();
  EXPECT_FALSE(report.passed);
  EXPECT_TRUE(report.postmortems.empty());
}

TEST(SloReportTest, ToJsonRendersObjectivesAndPostmortems) {
  SloReport r;
  r.active = true;
  r.passed = false;
  r.violated_at_us = 123456;
  r.violating_objective = "worst_p99_ms";
  SloObjectiveResult o;
  o.objective = "worst_p99_ms";
  o.limit = 50.0;
  o.observed = 80.5;
  o.passed = false;
  r.objectives.push_back(o);
  r.postmortems.push_back("postmortems/run.trace.json");
  std::string json = ToJson(r);
  EXPECT_EQ(json,
            "{\"passed\":false,\"violated_at_us\":123456,"
            "\"violating_objective\":\"worst_p99_ms\",\"objectives\":"
            "[{\"objective\":\"worst_p99_ms\",\"limit\":50,\"observed\":80.5,"
            "\"passed\":false}],\"postmortems\":"
            "[{\"path\":\"postmortems/run.trace.json\"}]}");
}

}  // namespace
}  // namespace tcs
