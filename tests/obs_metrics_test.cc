#include "src/obs/metrics.h"

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "src/obs/trace.h"
#include "src/sim/simulator.h"

namespace tcs {
namespace {

TEST(MetricsRegistryTest, CountersAccumulateAndKeepRegistrationOrder) {
  MetricsRegistry registry;
  MetricsCounter* faults = registry.AddCounter("page_faults");
  MetricsCounter* frames = registry.AddCounter("frames_sent");
  faults->Inc();
  faults->Inc(3);
  frames->Inc(10);
  ASSERT_EQ(registry.counters().size(), 2u);
  EXPECT_EQ(registry.counters()[0]->name(), "page_faults");
  EXPECT_EQ(registry.counters()[0]->value(), 4);
  EXPECT_EQ(registry.counters()[1]->value(), 10);
}

TEST(MetricsRegistryTest, CountersCsvListsCountersThenHistograms) {
  MetricsRegistry registry;
  registry.AddCounter("events")->Inc(7);
  RunningStats* lat = registry.AddHistogram("latency_ms");
  lat->Add(10.0);
  lat->Add(30.0);
  std::ostringstream out;
  registry.WriteCountersCsv(out);
  EXPECT_EQ(out.str(),
            "metric,value\n"
            "events,7\n"
            "latency_ms_mean,20\n"
            "latency_ms_max,30\n"
            "latency_ms_count,2\n");
}

TEST(PeriodicSamplerTest, SamplesEveryPeriodOfVirtualTime) {
  Simulator sim;
  MetricsRegistry registry;
  int polls = 0;
  registry.AddGauge("depth", [&polls] { return static_cast<double>(++polls); });
  PeriodicSampler sampler(sim, registry, Duration::Millis(100));
  sampler.Start(Duration::Millis(100));
  sim.RunUntil(TimePoint::FromMicros(1'000'000));
  sampler.Stop();
  // One sample per 100 ms over 1 s of virtual time: t = 100 ms .. 1000 ms.
  EXPECT_EQ(sampler.samples_taken(), 10);
  EXPECT_EQ(polls, 10);
  ASSERT_EQ(sampler.gauge_count(), 1u);
  EXPECT_GE(sampler.series(0).bucket_count(), 9u);
}

TEST(PeriodicSamplerTest, CsvHasHeaderAndOneRowPerBucket) {
  Simulator sim;
  MetricsRegistry registry;
  registry.AddGauge("runq_depth", [] { return 2.0; });
  registry.AddGauge("resident_pages", [] { return 512.0; });
  PeriodicSampler sampler(sim, registry, Duration::Millis(100));
  sampler.Start();
  sim.RunUntil(TimePoint::FromMicros(300'000));
  sampler.Stop();
  std::ostringstream out;
  sampler.WriteCsv(out);
  std::string csv = out.str();
  EXPECT_EQ(csv.find("time_s,runq_depth,resident_pages\n"), 0u);
  EXPECT_NE(csv.find(",2,512\n"), std::string::npos);
}

TEST(PeriodicSamplerTest, MirrorsSamplesAsTracerCounterEvents) {
  Simulator sim;
  MetricsRegistry registry;
  registry.AddGauge("backlog", [] { return 1.5; });
  Tracer tracer;
  PeriodicSampler sampler(sim, registry, Duration::Millis(100), &tracer);
  sampler.Start(Duration::Millis(100));
  sim.RunUntil(TimePoint::FromMicros(200'000));
  sampler.Stop();
  EXPECT_EQ(tracer.event_count(), 2u);
  std::string json = tracer.ToJson();
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"backlog\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":1.5"), std::string::npos);
}

TEST(PeriodicSamplerTest, GaugesRegisteredAfterConstructionGetSeries) {
  Simulator sim;
  MetricsRegistry registry;
  registry.AddGauge("first", [] { return 1.0; });
  PeriodicSampler sampler(sim, registry, Duration::Millis(100));
  registry.AddGauge("late", [] { return 9.0; });
  sampler.Start();
  sim.RunUntil(TimePoint::FromMicros(200'000));
  sampler.Stop();
  ASSERT_EQ(sampler.gauge_count(), 2u);
  EXPECT_GT(sampler.series(1).TotalSum(), 0.0);
}

}  // namespace
}  // namespace tcs
