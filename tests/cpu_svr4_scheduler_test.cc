#include "src/cpu/svr4_scheduler.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/cpu/cpu.h"
#include "src/sim/simulator.h"

namespace tcs {
namespace {

CpuConfig NoSwitchCost() {
  CpuConfig cfg;
  cfg.context_switch_cost = Duration::Zero();
  return cfg;
}

TEST(Svr4SchedulerTest, GuiAndDaemonAreInteractiveByClass) {
  Svr4InteractiveScheduler sched;
  Thread gui(1, "gui", ThreadClass::kGui, 0);
  Thread daemon(2, "d", ThreadClass::kDaemon, 0);
  Thread batch(3, "b", ThreadClass::kBatch, 0);
  EXPECT_TRUE(sched.IsInteractive(gui));
  EXPECT_TRUE(sched.IsInteractive(daemon));
  EXPECT_FALSE(sched.IsInteractive(batch));
}

TEST(Svr4SchedulerTest, InteractiveBandHasAbsolutePriority) {
  Svr4InteractiveScheduler sched;
  Thread batch(1, "b", ThreadClass::kBatch, 0);
  Thread gui(2, "g", ThreadClass::kGui, 0);
  sched.OnReady(batch, WakeReason::kOther);
  sched.OnReady(gui, WakeReason::kInputEvent);
  EXPECT_EQ(sched.PickNext(), &gui);
  EXPECT_EQ(sched.PickNext(), &batch);
}

TEST(Svr4SchedulerTest, InteractiveWakePreemptsBatch) {
  Svr4InteractiveScheduler sched;
  Thread batch(1, "b", ThreadClass::kBatch, 0);
  Thread gui(2, "g", ThreadClass::kGui, 0);
  EXPECT_TRUE(sched.ShouldPreempt(batch, gui));
  EXPECT_FALSE(sched.ShouldPreempt(gui, batch));
  Thread gui2(3, "g2", ThreadClass::kGui, 0);
  EXPECT_FALSE(sched.ShouldPreempt(gui, gui2));  // no preemption within the IA band
}

// Evans et al.'s result: keystroke handling latency remains constant and small even as
// load grows — the property the paper laments is missing from both TSE and Linux.
TEST(Svr4SchedulerTest, KeystrokeLatencyFlatUnderLoad) {
  auto run_with_sinks = [](int sinks) {
    Simulator sim;
    Cpu cpu(sim, std::make_unique<Svr4InteractiveScheduler>(), NoSwitchCost());
    for (int i = 0; i < sinks; ++i) {
      Thread* s = cpu.CreateThread("sink", ThreadClass::kBatch, 0);
      cpu.PostWork(*s, Duration::Seconds(1000));
    }
    Thread* editor = cpu.CreateThread("editor", ThreadClass::kGui, 0);
    TimePoint done = TimePoint::Infinite();
    sim.Schedule(Duration::Millis(25), [&] {
      cpu.PostWork(*editor, Duration::Millis(1), [&] { done = sim.Now(); },
                   WakeReason::kInputEvent);
    });
    sim.RunUntil(TimePoint::FromMicros(2000000));
    return done;
  };
  // Regardless of load, the editor preempts instantly and completes in 1 ms.
  EXPECT_EQ(run_with_sinks(0), TimePoint::FromMicros(26000));
  EXPECT_EQ(run_with_sinks(5), TimePoint::FromMicros(26000));
  EXPECT_EQ(run_with_sinks(20), TimePoint::FromMicros(26000));
}

TEST(Svr4SchedulerTest, BatchThreadEarnsInteractivityByBlocking) {
  Svr4SchedulerConfig cfg;
  Svr4InteractiveScheduler sched(cfg);
  Thread t(1, "chatty", ThreadClass::kBatch, 0);
  EXPECT_FALSE(sched.IsInteractive(t));
  // Repeatedly blocks before quantum exhaustion.
  for (int i = 0; i < 10; ++i) {
    sched.OnBlocked(t);
  }
  EXPECT_GE(t.interactivity, cfg.ia_threshold);
  EXPECT_TRUE(sched.IsInteractive(t));
}

TEST(Svr4SchedulerTest, QuantumBurningDecaysInteractivity) {
  Svr4SchedulerConfig cfg;
  Svr4InteractiveScheduler sched(cfg);
  Thread t(1, "hog", ThreadClass::kBatch, 0);
  t.interactivity = 1.0;
  for (int i = 0; i < 10; ++i) {
    sched.OnQuantumExpired(t);
    ASSERT_NE(sched.PickNext(), nullptr);  // drain the requeue
  }
  EXPECT_LT(t.interactivity, cfg.ia_threshold);
  EXPECT_FALSE(sched.IsInteractive(t));
}

TEST(Svr4SchedulerTest, RoundRobinWithinBands) {
  Svr4InteractiveScheduler sched;
  Thread g1(1, "g1", ThreadClass::kGui, 0);
  Thread g2(2, "g2", ThreadClass::kGui, 0);
  sched.OnReady(g1, WakeReason::kOther);
  sched.OnReady(g2, WakeReason::kOther);
  EXPECT_EQ(sched.PickNext(), &g1);
  sched.OnQuantumExpired(g1);
  EXPECT_EQ(sched.PickNext(), &g2);
}

}  // namespace
}  // namespace tcs
