// Property suite for the backpressure-driven DegradationController: monotone immediate
// upshifts, hysteretic no-flap recovery, deterministic (byte-identical) transition logs
// across reruns, per-level lever engagement, and config validation.

#include <gtest/gtest.h>

#include <vector>

#include "src/session/degradation.h"
#include "src/util/config_error.h"

namespace tcs {
namespace {

DegradationConfig TestConfig() {
  DegradationConfig cfg;
  cfg.enabled = true;
  cfg.poll_interval = Duration::Millis(100);
  cfg.level_step = Bytes::KiB(10);
  cfg.recover_fraction = 0.5;
  cfg.recover_polls = 3;
  cfg.coalesce_hold = Duration::Millis(40);
  cfg.animation_keep_one_in = 3;
  cfg.cache_boost = 2.0;
  return cfg;
}

// A controller plus the synthetic pressure knob the tests turn.
struct Rig {
  Simulator sim;
  int64_t pressure = 0;
  DegradationController ctl;

  explicit Rig(DegradationConfig cfg = TestConfig())
      : ctl(sim, cfg, [this] { return pressure; }) {}

  void PollAt(int64_t pressure_bytes) {
    pressure = pressure_bytes;
    ctl.Poll();
  }
};

TEST(DegradationConfigTest, ValidationRejectsBrokenConfigs) {
  DegradationConfig cfg = TestConfig();
  cfg.poll_interval = Duration::Zero();
  EXPECT_THROW(Validated(cfg), ConfigError);

  cfg = TestConfig();
  cfg.level_step = Bytes::Zero();
  EXPECT_THROW(Validated(cfg), ConfigError);

  cfg = TestConfig();
  cfg.recover_fraction = 0.0;
  EXPECT_THROW(Validated(cfg), ConfigError);
  cfg.recover_fraction = 1.0;
  EXPECT_THROW(Validated(cfg), ConfigError);

  cfg = TestConfig();
  cfg.recover_polls = 0;
  EXPECT_THROW(Validated(cfg), ConfigError);

  cfg = TestConfig();
  cfg.animation_keep_one_in = 0;
  EXPECT_THROW(Validated(cfg), ConfigError);

  cfg = TestConfig();
  cfg.cache_boost = 0.5;
  EXPECT_THROW(Validated(cfg), ConfigError);

  cfg = TestConfig();
  cfg.coalesce_hold = Duration::Millis(-1);
  EXPECT_THROW(Validated(cfg), ConfigError);

  EXPECT_NO_THROW(Validated(TestConfig()));
}

TEST(DegradationControllerTest, UpshiftIsImmediateAndMonotoneInPressure) {
  Rig rig;
  const int64_t step = Bytes::KiB(10).count();
  // One poll at 3 steps of pressure jumps straight to level 3 — no laddering up.
  rig.PollAt(3 * step);
  EXPECT_EQ(rig.ctl.level(), 3);
  EXPECT_EQ(rig.ctl.upshifts(), 1);
  // Higher pressure while degraded keeps climbing; the level is min(p/step, max).
  rig.PollAt(10 * step);
  EXPECT_EQ(rig.ctl.level(), kMaxDegradationLevel);
  // Pressure above the top of the ladder clamps, never overflows.
  rig.PollAt(1000 * step);
  EXPECT_EQ(rig.ctl.level(), kMaxDegradationLevel);
}

TEST(DegradationControllerTest, RecoveryIsHystereticAndStepsOneLevel) {
  Rig rig;
  const int64_t step = Bytes::KiB(10).count();
  rig.PollAt(2 * step);
  ASSERT_EQ(rig.ctl.level(), 2);
  // Recovery from level 2 needs pressure below 0.5 * 2 * step = 1 step, for 3 polls.
  rig.PollAt(step - 1);
  rig.PollAt(step - 1);
  EXPECT_EQ(rig.ctl.level(), 2);  // only 2 calm polls so far
  rig.PollAt(step - 1);
  EXPECT_EQ(rig.ctl.level(), 1);  // exactly one level, not straight to 0
  EXPECT_EQ(rig.ctl.downshifts(), 1);
}

TEST(DegradationControllerTest, BoundaryPressureNeverFlaps) {
  Rig rig;
  const int64_t step = Bytes::KiB(10).count();
  rig.PollAt(2 * step);
  ASSERT_EQ(rig.ctl.level(), 2);
  // Hovering exactly at the recovery threshold (not strictly below) keeps the level:
  // a link sitting on a boundary must not oscillate.
  for (int i = 0; i < 50; ++i) {
    rig.PollAt(step);  // == recover_fraction * 2 * step, not < it
    EXPECT_EQ(rig.ctl.level(), 2);
  }
  EXPECT_EQ(rig.ctl.transitions().size(), 1u);  // just the original upshift
}

TEST(DegradationControllerTest, CalmStreakResetsOnPressureSpike) {
  Rig rig;
  const int64_t step = Bytes::KiB(10).count();
  rig.PollAt(step);
  ASSERT_EQ(rig.ctl.level(), 1);
  // Two calm polls, then a spike below the upshift threshold: the streak restarts.
  rig.PollAt(0);
  rig.PollAt(0);
  rig.PollAt(step - 1);  // not calm (>= 0.5 * step), not an upshift either
  rig.PollAt(0);
  rig.PollAt(0);
  EXPECT_EQ(rig.ctl.level(), 1);
  rig.PollAt(0);  // third consecutive calm poll
  EXPECT_EQ(rig.ctl.level(), 0);
}

TEST(DegradationControllerTest, TransitionLogIsByteIdenticalAcrossReruns) {
  // The same pressure schedule through two independent controllers produces the same
  // transition log, field for field — the determinism the flight recorder relies on.
  std::vector<int64_t> schedule;
  const int64_t step = Bytes::KiB(10).count();
  for (int i = 0; i < 40; ++i) {
    schedule.push_back(((i * 7) % 5) * step + (i % 3));
  }
  auto run = [&schedule] {
    Rig rig;
    for (int64_t p : schedule) {
      rig.PollAt(p);
    }
    return rig.ctl.transitions();
  };
  std::vector<DegradationTransition> a = run();
  std::vector<DegradationTransition> b = run();
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].from, b[i].from);
    EXPECT_EQ(a[i].to, b[i].to);
    EXPECT_EQ(a[i].pressure_bytes, b[i].pressure_bytes);
  }
}

TEST(DegradationControllerTest, LeversEngageByLevel) {
  Rig rig;
  const int64_t step = Bytes::KiB(10).count();
  // Level 0: everything off.
  EXPECT_EQ(rig.ctl.CoalesceHold(), Duration::Zero());
  EXPECT_FALSE(rig.ctl.ShouldDropAnimationFrame());
  EXPECT_DOUBLE_EQ(rig.ctl.CacheBoost(), 1.0);
  EXPECT_FALSE(rig.ctl.BackgroundPaused());

  rig.PollAt(step);  // level 1: coalesce only
  EXPECT_EQ(rig.ctl.CoalesceHold(), Duration::Millis(40));
  EXPECT_FALSE(rig.ctl.ShouldDropAnimationFrame());
  EXPECT_DOUBLE_EQ(rig.ctl.CacheBoost(), 1.0);

  rig.PollAt(2 * step);  // level 2: + animation thinning, keep 1 in 3
  int dropped = 0;
  for (int i = 0; i < 9; ++i) {
    if (rig.ctl.ShouldDropAnimationFrame()) {
      ++dropped;
    }
  }
  EXPECT_EQ(dropped, 6);  // exactly 2 of every 3
  EXPECT_EQ(rig.ctl.animation_frames_dropped(), 6);
  EXPECT_DOUBLE_EQ(rig.ctl.CacheBoost(), 1.0);

  rig.PollAt(3 * step);  // level 3: + hard caching
  EXPECT_DOUBLE_EQ(rig.ctl.CacheBoost(), 2.0);
  EXPECT_FALSE(rig.ctl.BackgroundPaused());

  rig.PollAt(4 * step);  // level 4: + background pause
  EXPECT_TRUE(rig.ctl.BackgroundPaused());
}

TEST(DegradationControllerTest, DegradedTimeTracksClosedAndOpenIntervals) {
  Rig rig;
  const int64_t step = Bytes::KiB(10).count();
  Simulator& sim = rig.sim;
  // Degrade at t=1s, recover fully at t=2s, degrade again at t=3s, sample at t=4s.
  sim.RunFor(Duration::Seconds(1));
  rig.PollAt(step);
  sim.RunFor(Duration::Seconds(1));
  DegradationConfig cfg = TestConfig();
  for (int i = 0; i < cfg.recover_polls; ++i) {
    rig.PollAt(0);
  }
  ASSERT_EQ(rig.ctl.level(), 0);
  sim.RunFor(Duration::Seconds(1));
  rig.PollAt(2 * step);
  sim.RunFor(Duration::Seconds(1));
  EXPECT_EQ(rig.ctl.DegradedTimeThrough(sim.Now()), Duration::Seconds(2));
}

TEST(DegradationControllerTest, OnTransitionFiresWithLoggedLevels) {
  Rig rig;
  const int64_t step = Bytes::KiB(10).count();
  std::vector<std::pair<int, int>> seen;
  rig.ctl.set_on_transition(
      [&seen](int from, int to, TimePoint) { seen.push_back({from, to}); });
  rig.PollAt(2 * step);
  for (int i = 0; i < 3; ++i) {
    rig.PollAt(0);
  }
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], (std::pair<int, int>{0, 2}));
  EXPECT_EQ(seen[1], (std::pair<int, int>{2, 1}));
}

}  // namespace
}  // namespace tcs
