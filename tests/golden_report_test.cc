// Golden-report regression corpus.
//
// A small OS x protocol x load matrix of consolidation runs (plus one capacity search)
// is rendered to report JSON and compared field-exactly against the canonical files in
// tests/golden/. Only run.wall_ms — the one nondeterministic field in any report — is
// neutralized before comparison. Any change to simulation behavior, report field order,
// or number formatting shows up as a diff here.
//
// To re-bless after an intentional change: tools/regen_golden.sh (or run this binary
// with TCS_REGEN_GOLDEN=1).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/admission.h"
#include "src/core/checkpoint.h"
#include "src/core/report.h"
#include "src/session/os_profile.h"

namespace tcs {
namespace {

std::string StripWall(const std::string& json) {
  static const std::regex kWall("\"wall_ms\":[-+0-9.eE]+");
  return std::regex_replace(json, kWall, "\"wall_ms\":0");
}

// Depth-1 keys of a JSON object, in document order. The full-string comparison below
// already fails on any drift, but a raw diff of a multi-kilobyte report is a poor
// error message for the most dangerous kind of drift — a *new* top-level block the
// golden file has never seen — so that case gets named explicitly first.
std::vector<std::string> TopLevelKeys(const std::string& json) {
  std::vector<std::string> keys;
  std::string current;
  int depth = 0;
  bool in_string = false, escape = false, expecting_key = false, capturing = false;
  for (char c : json) {
    if (in_string) {
      if (escape) {
        escape = false;
      } else if (c == '\\') {
        escape = true;
      } else if (c == '"') {
        in_string = false;
        if (capturing) {
          keys.push_back(current);
          capturing = false;
        }
        continue;
      }
      if (capturing) {
        current += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        if (depth == 1 && expecting_key) {
          capturing = true;
          current.clear();
        }
        break;
      case '{':
      case '[':
        ++depth;
        if (depth == 1 && c == '{') {
          expecting_key = true;
        }
        break;
      case '}':
      case ']':
        --depth;
        break;
      case ':':
        if (depth == 1) {
          expecting_key = false;
        }
        break;
      case ',':
        if (depth == 1) {
          expecting_key = true;
        }
        break;
      default:
        break;
    }
  }
  return keys;
}

// Empty when the two reports carry the same top-level blocks; otherwise a message
// naming each unknown or missing block.
std::string KeySetDiff(const std::string& actual, const std::string& golden) {
  std::vector<std::string> a = TopLevelKeys(actual);
  std::vector<std::string> g = TopLevelKeys(golden);
  std::string msg;
  for (const std::string& k : a) {
    if (std::find(g.begin(), g.end(), k) == g.end()) {
      msg += "unknown top-level block \"" + k + "\" not present in the golden file\n";
    }
  }
  for (const std::string& k : g) {
    if (std::find(a.begin(), a.end(), k) == a.end()) {
      msg += "top-level block \"" + k + "\" missing from the rendered report\n";
    }
  }
  return msg;
}

struct GoldenCase {
  const char* name;  // also the file stem under tests/golden/
  std::string (*render)();
};

std::string Consolidation(OsProfile profile, int users) {
  ConsolidationOptions opt;
  opt.users = users;
  opt.duration = Duration::Seconds(5);
  opt.seed = 1;
  opt.burst_cpu = Duration::Millis(200);
  return ToJson(RunConsolidation(profile, opt));
}

OsProfile LinuxLbx() {
  OsProfile profile = OsProfile::LinuxX();
  profile.protocol_kind = ProtocolKind::kLbx;
  return profile;
}

// The corpus: OS x protocol x users, plus one full capacity search.
const GoldenCase kCases[] = {
    {"consolidation_tse_rdp_u1", [] { return Consolidation(OsProfile::Tse(), 1); }},
    {"consolidation_tse_rdp_u3", [] { return Consolidation(OsProfile::Tse(), 3); }},
    {"consolidation_linux_x_u1", [] { return Consolidation(OsProfile::LinuxX(), 1); }},
    {"consolidation_linux_x_u3", [] { return Consolidation(OsProfile::LinuxX(), 3); }},
    {"consolidation_linux_lbx_u3", [] { return Consolidation(LinuxLbx(), 3); }},
    {"consolidation_ntws_rdp_u2",
     [] { return Consolidation(OsProfile::NtWorkstation(), 2); }},
    {"capacity_tse_rdp",
     [] {
       CapacityOptions opt;
       opt.max_users = 4;
       opt.behavior.duration = Duration::Seconds(5);
       return ToJson(RunServerCapacity(OsProfile::Tse(), opt));
     }},
};

class GoldenReportTest : public ::testing::TestWithParam<size_t> {};

INSTANTIATE_TEST_SUITE_P(Corpus, GoldenReportTest,
                         ::testing::Range<size_t>(0, std::size(kCases)),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return std::string(kCases[info.param].name);
                         });

TEST_P(GoldenReportTest, ReportMatchesGoldenFieldForField) {
  const GoldenCase& c = kCases[GetParam()];
  std::string path = std::string(TCS_GOLDEN_DIR) + "/" + c.name + ".json";
  std::string actual = c.render() + "\n";

  if (std::getenv("TCS_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << actual;
    SUCCEED() << "regenerated " << path;
    return;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " — run tools/regen_golden.sh to create the corpus";
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string key_drift = KeySetDiff(actual, buffer.str());
  EXPECT_TRUE(key_drift.empty())
      << key_drift << "a report grew or lost a top-level block relative to " << path
      << " — if the change is intentional, re-bless with tools/regen_golden.sh";
  EXPECT_EQ(StripWall(actual), StripWall(buffer.str()))
      << "report drifted from " << path
      << " — if the change is intentional, re-bless with tools/regen_golden.sh";
}

// Regression for the guard itself: a brand-new top-level block must be a *named*
// failure, both on synthetic documents and on a real rendered report. Nested keys are
// not top-level keys — growth inside an existing block is the string diff's job.
TEST(GoldenReportGuard, UnknownTopLevelBlockIsANamedFailure) {
  std::string golden = R"({"os":"tse","run":{"wall_ms":3}})";
  std::string grown = R"({"os":"tse","run":{"wall_ms":3},"new_block":{"x":1}})";
  EXPECT_EQ(KeySetDiff(golden, golden), "");
  std::string diff = KeySetDiff(grown, golden);
  EXPECT_NE(diff.find("unknown top-level block \"new_block\""), std::string::npos)
      << diff;
  std::string missing = KeySetDiff(golden, grown);
  EXPECT_NE(missing.find("\"new_block\" missing"), std::string::npos) << missing;
  EXPECT_EQ(KeySetDiff(R"({"a":{"b":1}})", R"({"a":{"c":{"d":2}}})"), "");
  EXPECT_EQ(KeySetDiff(R"({"a":["x","y"]})", R"({"a":[]})"), "");

  std::string report = Consolidation(OsProfile::Tse(), 1);
  std::string injected = report;
  injected.insert(injected.rfind('}'), R"(,"zzz_experimental":0)");
  std::string real_diff = KeySetDiff(injected, report);
  EXPECT_NE(real_diff.find("unknown top-level block \"zzz_experimental\""),
            std::string::npos)
      << real_diff;
}

// Golden-corpus guard for the checkpoint layer: a consolidation forked from a mid-run
// snapshot must reproduce the *committed* golden report field-exactly (wall_ms aside).
// Deliberately no TCS_REGEN_GOLDEN path: this test compares even while the corpus is
// being re-blessed, so `regen_golden.sh` and `regen_golden.sh --check` both enforce
// that fork-from-snapshot cannot drift a report — there is nothing to re-bless here.
TEST(GoldenReportGuard, CheckpointedRunMatchesTheColdGoldenFile) {
  ConsolidationOptions opt;
  opt.users = 3;
  opt.duration = Duration::Seconds(5);
  opt.seed = 1;
  opt.burst_cpu = Duration::Millis(200);
  ConsolidationRun cold(OsProfile::Tse(), opt);
  // Mid-run: typists are up and paging against a warmed working set.
  cold.RunUntil(TimePoint::Zero() + Duration::Millis(2500));
  std::vector<uint8_t> blob = cold.Snapshot();

  ConsolidationRun fork(OsProfile::Tse(), opt);
  fork.Restore(blob);
  fork.RunToEnd();
  std::string actual = ToJson(fork.Finish()) + "\n";

  if (std::getenv("TCS_REGEN_GOLDEN") != nullptr) {
    // Mid-re-bless the file on disk may be either generation, and test order must not
    // matter — so enforce against a freshly rendered cold report instead. Combined
    // with the corpus case above (cold render == golden file), the committed-file
    // guarantee still holds transitively.
    std::string cold_render = Consolidation(OsProfile::Tse(), 3) + "\n";
    EXPECT_EQ(StripWall(actual), StripWall(cold_render))
        << "checkpointed replay diverged from the cold run — fork-from-snapshot broke "
           "report determinism";
    return;
  }

  std::string path = std::string(TCS_GOLDEN_DIR) + "/consolidation_tse_rdp_u3.json";
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " — run tools/regen_golden.sh to create the corpus";
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(StripWall(actual), StripWall(buffer.str()))
      << "checkpointed replay of consolidation_tse_rdp_u3 drifted from the committed "
         "golden file — fork-from-snapshot broke report determinism";
}

}  // namespace
}  // namespace tcs
