// Golden-report regression corpus.
//
// A small OS x protocol x load matrix of consolidation runs (plus one capacity search)
// is rendered to report JSON and compared field-exactly against the canonical files in
// tests/golden/. Only run.wall_ms — the one nondeterministic field in any report — is
// neutralized before comparison. Any change to simulation behavior, report field order,
// or number formatting shows up as a diff here.
//
// To re-bless after an intentional change: tools/regen_golden.sh (or run this binary
// with TCS_REGEN_GOLDEN=1).

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/admission.h"
#include "src/core/report.h"
#include "src/session/os_profile.h"

namespace tcs {
namespace {

std::string StripWall(const std::string& json) {
  static const std::regex kWall("\"wall_ms\":[-+0-9.eE]+");
  return std::regex_replace(json, kWall, "\"wall_ms\":0");
}

struct GoldenCase {
  const char* name;  // also the file stem under tests/golden/
  std::string (*render)();
};

std::string Consolidation(OsProfile profile, int users) {
  ConsolidationOptions opt;
  opt.users = users;
  opt.duration = Duration::Seconds(5);
  opt.seed = 1;
  opt.burst_cpu = Duration::Millis(200);
  return ToJson(RunConsolidation(profile, opt));
}

OsProfile LinuxLbx() {
  OsProfile profile = OsProfile::LinuxX();
  profile.protocol_kind = ProtocolKind::kLbx;
  return profile;
}

// The corpus: OS x protocol x users, plus one full capacity search.
const GoldenCase kCases[] = {
    {"consolidation_tse_rdp_u1", [] { return Consolidation(OsProfile::Tse(), 1); }},
    {"consolidation_tse_rdp_u3", [] { return Consolidation(OsProfile::Tse(), 3); }},
    {"consolidation_linux_x_u1", [] { return Consolidation(OsProfile::LinuxX(), 1); }},
    {"consolidation_linux_x_u3", [] { return Consolidation(OsProfile::LinuxX(), 3); }},
    {"consolidation_linux_lbx_u3", [] { return Consolidation(LinuxLbx(), 3); }},
    {"consolidation_ntws_rdp_u2",
     [] { return Consolidation(OsProfile::NtWorkstation(), 2); }},
    {"capacity_tse_rdp",
     [] {
       CapacityOptions opt;
       opt.max_users = 4;
       opt.behavior.duration = Duration::Seconds(5);
       return ToJson(RunServerCapacity(OsProfile::Tse(), opt));
     }},
};

class GoldenReportTest : public ::testing::TestWithParam<size_t> {};

INSTANTIATE_TEST_SUITE_P(Corpus, GoldenReportTest,
                         ::testing::Range<size_t>(0, std::size(kCases)),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return std::string(kCases[info.param].name);
                         });

TEST_P(GoldenReportTest, ReportMatchesGoldenFieldForField) {
  const GoldenCase& c = kCases[GetParam()];
  std::string path = std::string(TCS_GOLDEN_DIR) + "/" + c.name + ".json";
  std::string actual = c.render() + "\n";

  if (std::getenv("TCS_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << actual;
    SUCCEED() << "regenerated " << path;
    return;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " — run tools/regen_golden.sh to create the corpus";
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(StripWall(actual), StripWall(buffer.str()))
      << "report drifted from " << path
      << " — if the change is intentional, re-bless with tools/regen_golden.sh";
}

}  // namespace
}  // namespace tcs
