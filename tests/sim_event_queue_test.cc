#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace tcs {
namespace {

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(TimePoint::FromMicros(30), [&] { order.push_back(3); });
  q.Schedule(TimePoint::FromMicros(10), [&] { order.push_back(1); });
  q.Schedule(TimePoint::FromMicros(20), [&] { order.push_back(2); });
  while (!q.empty()) {
    TimePoint when;
    q.Pop(&when)();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.Schedule(TimePoint::FromMicros(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) {
    TimePoint when;
    q.Pop(&when)();
  }
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(EventQueueTest, NextTimeReportsEarliest) {
  EventQueue q;
  q.Schedule(TimePoint::FromMicros(50), [] {});
  q.Schedule(TimePoint::FromMicros(20), [] {});
  EXPECT_EQ(q.NextTime(), TimePoint::FromMicros(20));
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  EventId id = q.Schedule(TimePoint::FromMicros(10), [&] { fired = true; });
  EXPECT_TRUE(q.IsPending(id));
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.IsPending(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelTwiceReturnsFalse) {
  EventQueue q;
  EventId id = q.Schedule(TimePoint::FromMicros(10), [] {});
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));
}

TEST(EventQueueTest, CancelAfterFireReturnsFalse) {
  EventQueue q;
  EventId id = q.Schedule(TimePoint::FromMicros(10), [] {});
  TimePoint when;
  q.Pop(&when)();
  EXPECT_FALSE(q.Cancel(id));
}

TEST(EventQueueTest, CancelDefaultIdIsNoOp) {
  EventQueue q;
  q.Schedule(TimePoint::FromMicros(10), [] {});
  EXPECT_FALSE(q.Cancel(EventId()));
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, CancelledHeadSkipped) {
  EventQueue q;
  std::vector<int> order;
  EventId first = q.Schedule(TimePoint::FromMicros(10), [&] { order.push_back(1); });
  q.Schedule(TimePoint::FromMicros(20), [&] { order.push_back(2); });
  q.Cancel(first);
  EXPECT_EQ(q.NextTime(), TimePoint::FromMicros(20));
  TimePoint when;
  q.Pop(&when)();
  EXPECT_EQ(when, TimePoint::FromMicros(20));
  EXPECT_EQ(order, (std::vector<int>{2}));
}

TEST(EventQueueTest, SizeTracksLiveEvents) {
  EventQueue q;
  EventId a = q.Schedule(TimePoint::FromMicros(1), [] {});
  q.Schedule(TimePoint::FromMicros(2), [] {});
  EXPECT_EQ(q.size(), 2u);
  q.Cancel(a);
  EXPECT_EQ(q.size(), 1u);
  TimePoint when;
  q.Pop(&when);
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace tcs
