#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/session/server.h"
#include "src/sim/periodic.h"
#include "src/sim/simulator.h"

namespace tcs {
namespace {

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(TimePoint::FromMicros(30), [&] { order.push_back(3); });
  q.Schedule(TimePoint::FromMicros(10), [&] { order.push_back(1); });
  q.Schedule(TimePoint::FromMicros(20), [&] { order.push_back(2); });
  while (!q.empty()) {
    TimePoint when;
    q.Pop(&when)();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.Schedule(TimePoint::FromMicros(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) {
    TimePoint when;
    q.Pop(&when)();
  }
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(EventQueueTest, NextTimeReportsEarliest) {
  EventQueue q;
  q.Schedule(TimePoint::FromMicros(50), [] {});
  q.Schedule(TimePoint::FromMicros(20), [] {});
  EXPECT_EQ(q.NextTime(), TimePoint::FromMicros(20));
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  EventId id = q.Schedule(TimePoint::FromMicros(10), [&] { fired = true; });
  EXPECT_TRUE(q.IsPending(id));
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.IsPending(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelTwiceReturnsFalse) {
  EventQueue q;
  EventId id = q.Schedule(TimePoint::FromMicros(10), [] {});
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));
}

TEST(EventQueueTest, CancelAfterFireReturnsFalse) {
  EventQueue q;
  EventId id = q.Schedule(TimePoint::FromMicros(10), [] {});
  TimePoint when;
  q.Pop(&when)();
  EXPECT_FALSE(q.Cancel(id));
}

TEST(EventQueueTest, CancelDefaultIdIsNoOp) {
  EventQueue q;
  q.Schedule(TimePoint::FromMicros(10), [] {});
  EXPECT_FALSE(q.Cancel(EventId()));
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, CancelledHeadSkipped) {
  EventQueue q;
  std::vector<int> order;
  EventId first = q.Schedule(TimePoint::FromMicros(10), [&] { order.push_back(1); });
  q.Schedule(TimePoint::FromMicros(20), [&] { order.push_back(2); });
  q.Cancel(first);
  EXPECT_EQ(q.NextTime(), TimePoint::FromMicros(20));
  TimePoint when;
  q.Pop(&when)();
  EXPECT_EQ(when, TimePoint::FromMicros(20));
  EXPECT_EQ(order, (std::vector<int>{2}));
}

// A slot freed by Cancel and recycled by a later Schedule must not honor the old
// tenant's id: the generation tag moved on.
TEST(EventQueueTest, StaleIdAfterCancelCannotTouchRecycledSlot) {
  EventQueue q;
  bool new_fired = false;
  EventId stale = q.Schedule(TimePoint::FromMicros(10), [] {});
  ASSERT_TRUE(q.Cancel(stale));
  // The free list is LIFO, so this reuses the slot the cancelled event vacated.
  EventId fresh = q.Schedule(TimePoint::FromMicros(20), [&] { new_fired = true; });
  EXPECT_NE(stale, fresh);
  EXPECT_FALSE(q.IsPending(stale));
  EXPECT_TRUE(q.IsPending(fresh));
  EXPECT_FALSE(q.Cancel(stale));  // must not cancel the slot's new tenant
  EXPECT_TRUE(q.IsPending(fresh));
  TimePoint when;
  q.Pop(&when)();
  EXPECT_TRUE(new_fired);
}

// Same hazard via the fire path: popping an event frees its slot too.
TEST(EventQueueTest, StaleIdAfterFireCannotTouchRecycledSlot) {
  EventQueue q;
  EventId stale = q.Schedule(TimePoint::FromMicros(10), [] {});
  TimePoint when;
  q.Pop(&when)();
  EventId fresh = q.Schedule(TimePoint::FromMicros(20), [] {});
  EXPECT_FALSE(q.Cancel(stale));
  EXPECT_FALSE(q.IsPending(stale));
  EXPECT_TRUE(q.IsPending(fresh));
  EXPECT_TRUE(q.Cancel(fresh));
}

// Interleaved schedule/cancel/pop churn, checked against a brute-force reference model.
// Exercises slot recycling, tombstone skipping, and heap repair under load.
TEST(EventQueueTest, InterleavedChurnMatchesReferenceModel) {
  EventQueue q;
  struct Ref {
    int64_t when_us;
    uint64_t order;  // scheduling order, the tie-breaker
    EventId id;
  };
  std::vector<Ref> live;
  std::vector<std::pair<int64_t, uint64_t>> expected;
  std::vector<std::pair<int64_t, uint64_t>> fired;
  uint64_t order = 0;
  uint64_t rng = 12345;
  auto next_rand = [&rng] {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    return rng >> 33;
  };

  for (int round = 0; round < 2000; ++round) {
    uint64_t r = next_rand();
    if (r % 100 < 55 || live.empty()) {
      int64_t when_us = static_cast<int64_t>(next_rand() % 512);
      uint64_t tag = order++;
      EventId id = q.Schedule(TimePoint::FromMicros(when_us),
                              [&fired, when_us, tag] { fired.push_back({when_us, tag}); });
      live.push_back({when_us, tag, id});
    } else if (r % 100 < 75) {
      size_t victim = next_rand() % live.size();
      EXPECT_TRUE(q.Cancel(live[victim].id));
      live.erase(live.begin() + static_cast<ptrdiff_t>(victim));
    } else {
      auto earliest = std::min_element(
          live.begin(), live.end(), [](const Ref& a, const Ref& b) {
            return a.when_us != b.when_us ? a.when_us < b.when_us : a.order < b.order;
          });
      expected.push_back({earliest->when_us, earliest->order});
      TimePoint when;
      q.Pop(&when)();
      EXPECT_EQ(when, TimePoint::FromMicros(earliest->when_us));
      live.erase(earliest);
    }
    ASSERT_EQ(q.size(), live.size());
  }
  while (!live.empty()) {
    auto earliest =
        std::min_element(live.begin(), live.end(), [](const Ref& a, const Ref& b) {
          return a.when_us != b.when_us ? a.when_us < b.when_us : a.order < b.order;
        });
    expected.push_back({earliest->when_us, earliest->order});
    TimePoint when;
    q.Pop(&when)();
    live.erase(earliest);
  }
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(fired, expected);
}

// The determinism contract: two identically seeded runs of a loaded server execute the
// same events in the same order and emit display updates at identical times.
TEST(EventQueueTest, LoadedServerRunsAreDeterministic) {
  auto run_once = [] {
    Simulator sim;
    Server server(sim, OsProfile::Tse());
    server.StartDaemons();
    Session& session = server.Login();
    server.StartSinks(5);
    std::vector<TimePoint> updates;
    session.set_on_display_update([&updates](TimePoint t) { updates.push_back(t); });
    PeriodicTask typist(sim, Duration::Millis(200),
                        [&server, &session] { server.Keystroke(session); });
    typist.Start();
    sim.RunUntil(TimePoint::Zero() + Duration::Seconds(5));
    return std::make_pair(std::move(updates), sim.events_executed());
  };
  auto first = run_once();
  auto second = run_once();
  EXPECT_GT(first.second, 0u);
  EXPECT_EQ(first.second, second.second);
  ASSERT_FALSE(first.first.empty());
  EXPECT_EQ(first.first, second.first);
}

TEST(EventQueueTest, SizeTracksLiveEvents) {
  EventQueue q;
  EventId a = q.Schedule(TimePoint::FromMicros(1), [] {});
  q.Schedule(TimePoint::FromMicros(2), [] {});
  EXPECT_EQ(q.size(), 2u);
  q.Cancel(a);
  EXPECT_EQ(q.size(), 1u);
  TimePoint when;
  q.Pop(&when);
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace tcs
