#include "src/sim/inline_callback.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

namespace tcs {
namespace {

TEST(InlineCallbackTest, DefaultIsEmpty) {
  InlineCallback cb;
  EXPECT_FALSE(cb);
  InlineCallback null_cb(nullptr);
  EXPECT_FALSE(null_cb);
}

TEST(InlineCallbackTest, InvokesStoredLambda) {
  int calls = 0;
  InlineCallback cb([&calls] { ++calls; });
  ASSERT_TRUE(cb);
  cb();
  cb();
  EXPECT_EQ(calls, 2);
}

TEST(InlineCallbackTest, SmallCapturesStayInline) {
  // The hot-path shape: `this` plus a couple of scalars.
  struct Model {
    int x = 0;
  } model;
  uint64_t a = 1, b = 2;
  InlineCallback cb([&model, a, b] { model.x = static_cast<int>(a + b); });
  EXPECT_TRUE(cb.is_inline());
  cb();
  EXPECT_EQ(model.x, 3);
  // A whole std::function forwarded through still fits the 48-byte buffer.
  std::function<void()> fn = [&model] { model.x = 7; };
  InlineCallback wrapped(std::move(fn));
  EXPECT_TRUE(wrapped.is_inline());
  wrapped();
  EXPECT_EQ(model.x, 7);
}

TEST(InlineCallbackTest, LargeCapturesFallBackToHeapAndStillRun) {
  std::array<uint64_t, 16> payload{};  // 128 bytes: over the inline budget
  payload[15] = 42;
  uint64_t seen = 0;
  InlineCallback cb([payload, &seen] { seen = payload[15]; });
  EXPECT_FALSE(cb.is_inline());
  cb();
  EXPECT_EQ(seen, 42u);
}

TEST(InlineCallbackTest, MoveTransfersOwnership) {
  int calls = 0;
  InlineCallback a([&calls] { ++calls; });
  InlineCallback b(std::move(a));
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): moved-from must read empty
  ASSERT_TRUE(b);
  b();
  EXPECT_EQ(calls, 1);

  InlineCallback c;
  c = std::move(b);
  EXPECT_FALSE(b);  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(c);
  c();
  EXPECT_EQ(calls, 2);
}

TEST(InlineCallbackTest, SupportsMoveOnlyCaptures) {
  // std::function cannot hold this; the event queue needs it for one-shot payloads.
  auto owned = std::make_unique<int>(9);
  int seen = 0;
  InlineCallback cb([owned = std::move(owned), &seen] { seen = *owned; });
  cb();
  EXPECT_EQ(seen, 9);
}

TEST(InlineCallbackTest, DestroysCaptureExactlyOnce) {
  struct Counter {
    explicit Counter(int* deaths) : deaths_(deaths) {}
    Counter(Counter&& other) noexcept : deaths_(std::exchange(other.deaths_, nullptr)) {}
    Counter(const Counter&) = delete;
    ~Counter() {
      if (deaths_ != nullptr) {
        ++*deaths_;
      }
    }
    int* deaths_;
  };
  int deaths = 0;
  {
    InlineCallback cb([c = Counter(&deaths)] { (void)c; });
    InlineCallback moved(std::move(cb));
    moved();  // invoking must not destroy the capture
    EXPECT_EQ(deaths, 0);
  }
  EXPECT_EQ(deaths, 1);
}

}  // namespace
}  // namespace tcs
