// Property suite for the causal critical-path profiler: the extracted path's segment
// sum equals the end-to-end latency to the microsecond for every interaction across
// seeds and WAN profiles; the display-net decomposition sums to the network total; the
// rendered graphs are byte-identical across reruns and sweep worker counts; degradation
// coalesce holds are billed to their own stage (not sched-wait); and the WAN
// backpressure gauges register on faulted runs.

#include "src/obs/critical_path.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/client/thin_client.h"
#include "src/core/experiments.h"
#include "src/core/parallel_sweep.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/session/os_profile.h"
#include "src/session/server.h"

namespace tcs {
namespace {

constexpr int Idx(AttrStage stage) { return static_cast<int>(stage); }

// One WAN cell with per-interaction records retained; an empty name is the plain-LAN
// differential baseline (no injector, no reliable channel).
struct CellResult {
  WanPoint point;
  std::vector<InteractionRecord> records;
};

CellResult RunCell(const std::string& profile_name, uint64_t seed, int users,
                   Duration duration, bool degrade = false,
                   FlightRecorder* recorder = nullptr, bool background = true,
                   Duration think_time = Duration::Millis(200)) {
  WanOptions opt;
  if (!profile_name.empty()) {
    opt.profile = WanProfileByName(profile_name);
  }
  opt.users = users;
  opt.duration = duration;
  opt.seed = seed;
  opt.degrade = degrade;
  opt.background_session = background;
  opt.think_time = think_time;
  AttributionConfig cfg;
  cfg.keep_records = true;
  cfg.decompose_network = true;
  cfg.recorder = recorder;
  LatencyAttribution attribution(cfg);
  ObsConfig obs;
  obs.attribution = &attribution;
  obs.recorder = recorder;
  CellResult r;
  r.point = RunWanPoint(OsProfile::Tse(), opt, &obs);
  for (const InteractionRecord& rec : attribution.records()) {
    r.records.push_back(rec);
  }
  return r;
}

// The tentpole invariant, per record: stages telescope to the end-to-end total, the
// display-net decomposition telescopes to the display-net stage, and the extracted
// critical path's segment sum equals the end-to-end latency exactly.
void CheckRecord(const InteractionRecord& rec) {
  ASSERT_EQ(rec.StageSum(), rec.total_us()) << "interaction " << rec.id;
  ASSERT_EQ(rec.NetSum(), rec.stage_us[Idx(AttrStage::kDisplayNet)])
      << "interaction " << rec.id;
  for (int s = 0; s < kNetSubStageCount; ++s) {
    ASSERT_GE(rec.net_us[s], 0) << "net sub-stage " << s;
  }
  CriticalPathGraph g = CriticalPathGraph::Build(rec);
  ASSERT_EQ(g.end_to_end_us(), rec.total_us());
  ASSERT_EQ(g.edges().size(), g.nodes().size() - 1);  // serially-dependent chain
  std::vector<CriticalPathSegment> path = g.ExtractCriticalPath();
  ASSERT_EQ(CriticalPathGraph::SegmentSumUs(path), rec.total_us())
      << "interaction " << rec.id;
  for (const CriticalPathSegment& seg : path) {
    ASSERT_GT(seg.duration_us, 0);  // zero-width intervals are elided
  }
}

TEST(CriticalPathTest, SegmentSumEqualsEndToEndAcrossSeedsAndProfiles) {
  const std::string profiles[] = {"", "dsl", "lte", "satellite"};
  for (const std::string& profile : profiles) {
    for (uint64_t seed = 1; seed <= 10; ++seed) {
      SCOPED_TRACE((profile.empty() ? std::string("lan") : profile) + " seed " +
                   std::to_string(seed));
      CellResult cell =
          RunCell(profile, seed, /*users=*/2, Duration::Seconds(2));
      ASSERT_FALSE(cell.records.empty());
      EXPECT_EQ(cell.point.blame.accounting_mismatches, 0);
      EXPECT_EQ(cell.point.blame.net_mismatches, 0);
      for (const InteractionRecord& rec : cell.records) {
        CheckRecord(rec);
      }
    }
  }
}

// The acceptance bar: a 64-user consolidated run under each WAN profile, every
// interaction's critical path exact.
TEST(CriticalPathTest, SixtyFourUserConsolidatedRunStaysExact) {
  for (const std::string& profile : WanProfileNames()) {
    SCOPED_TRACE(profile);
    // 64 interactive users share ONE WAN link and one 64 MiB server in this model, so
    // the defaults (200 ms cadence, saturating background media) put every profile in
    // total congestion collapse — zero echoes ever paint. A 2 s think time, no media
    // flow, and 600 simulated seconds lets the login storm drain (64 desktop paints
    // over a 4 Mbps link alone take ~3 minutes) and commits hundreds of real
    // interactions per profile, each of which must be exact.
    CellResult cell = RunCell(profile, /*seed=*/7, /*users=*/64, Duration::Seconds(600),
                              /*degrade=*/false, /*recorder=*/nullptr,
                              /*background=*/false, /*think_time=*/Duration::Seconds(2));
    ASSERT_GT(cell.records.size(), 64u);  // every user echoed at least once
    EXPECT_EQ(cell.point.blame.accounting_mismatches, 0);
    EXPECT_EQ(cell.point.blame.net_mismatches, 0);
    for (const InteractionRecord& rec : cell.records) {
      CheckRecord(rec);
    }
  }
}

// Collect()'s aggregate view obeys the same telescoping: the five net sub-stage totals
// sum to the display-net stage total, and shares sum to 1 over nonzero stages.
TEST(CriticalPathTest, CollectedDecompositionSumsToNetworkTotal) {
  CellResult cell = RunCell("lte", /*seed=*/3, /*users=*/2, Duration::Seconds(4));
  const AttributionResult& blame = cell.point.blame;
  ASSERT_EQ(blame.net_stages.size(), static_cast<size_t>(kNetSubStageCount));
  int64_t net_sum = 0;
  for (const StageSummary& s : blame.net_stages) {
    net_sum += s.total_us;
  }
  int64_t display_net = 0;
  for (const StageSummary& s : blame.stages) {
    if (s.stage == "display-net") {
      display_net = s.total_us;
    }
  }
  EXPECT_GT(display_net, 0);
  EXPECT_EQ(net_sum, display_net);
  EXPECT_EQ(blame.net_mismatches, 0);
}

// Determinism contract: the concatenated graph JSON of every interaction is
// byte-identical across reruns and across sweep worker counts.
TEST(CriticalPathTest, GraphJsonByteIdenticalAcrossRerunsAndWorkers) {
  auto render = [](int workers) {
    ParallelSweep sweep(workers);
    auto parts = sweep.Map(2, [&](int i) {
      CellResult cell = RunCell(i == 0 ? "lte" : "dsl", /*seed=*/5, /*users=*/2,
                                Duration::Seconds(2));
      std::string out;
      for (const InteractionRecord& rec : cell.records) {
        out += CriticalPathGraph::Build(rec).ToJson();
        out += '\n';
      }
      return out;
    });
    return parts[0] + parts[1];
  };
  std::string one = render(1);
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one, render(1));  // rerun
  EXPECT_EQ(one, render(4));  // worker count
}

// With a flight recorder attached, the graph annotates nodes with overlapping flow-id
// records; at minimum the commit's own blame span (sent -> painted) overlaps every
// non-empty node.
TEST(CriticalPathTest, FlightRecorderRecordsCorrelateByFlowId) {
  FlightRecorder recorder;
  CellResult cell = RunCell("lte", /*seed=*/2, /*users=*/2, Duration::Seconds(2),
                            /*degrade=*/false, &recorder);
  ASSERT_FALSE(cell.records.empty());
  const InteractionRecord& rec = cell.records.back();  // freshest: still in the ring
  CriticalPathGraph annotated = CriticalPathGraph::Build(rec, &recorder);
  int64_t total = 0;
  for (const CriticalPathNode& node : annotated.nodes()) {
    total += node.flight_records;
    if (node.duration_us() > 0) {
      EXPECT_GE(node.flight_records, 1) << node.component << "/" << node.stage;
    }
  }
  EXPECT_GT(total, 0);
  // Without the recorder the same record yields zero annotations.
  CriticalPathGraph bare = CriticalPathGraph::Build(rec);
  for (const CriticalPathNode& node : bare.nodes()) {
    EXPECT_EQ(node.flight_records, 0);
  }
}

// Regression: a degradation coalesce hold is billed to the degradation-hold stage, not
// sched-wait — degraded runs must not masquerade as scheduler contention. A one-byte
// level step with the login backlog still draining forces an immediate upshift, so the
// second keystroke's batch is held for the full coalesce window.
TEST(CriticalPathTest, CoalesceHoldBillsDegradationHoldNotSchedWait) {
  Simulator sim;
  ServerConfig cfg;
  cfg.degradation.enabled = true;
  cfg.degradation.poll_interval = Duration::Millis(1);
  cfg.degradation.start_delay = Duration::Zero();
  cfg.degradation.level_step = Bytes::Of(1);
  AttributionConfig attr_cfg;
  attr_cfg.keep_records = true;
  LatencyAttribution attribution(attr_cfg);
  cfg.attribution = &attribution;
  Server server(sim, OsProfile::Tse(), cfg);
  server.AttachClient(ThinClientConfig::DesktopPc());
  Session& session = server.Login();
  sim.RunFor(Duration::Millis(5));  // login bytes still on the wire: controller upshifts
  ASSERT_NE(server.degradation(), nullptr);
  ASSERT_GT(server.degradation()->level(), 0);
  server.Keystroke(session);
  sim.RunFor(Duration::Millis(1));
  server.Keystroke(session);  // lands while the first pass runs -> held batch
  sim.RunFor(Duration::Seconds(2));

  AttributionResult r = attribution.Collect();
  EXPECT_EQ(r.accounting_mismatches, 0);
  ASSERT_EQ(r.stages.size(), static_cast<size_t>(kAttrStageCount));  // hold accrued
  const StageSummary& hold = r.stages.back();
  ASSERT_EQ(hold.stage, "degradation-hold");
  // The held batch waited out (most of) the 40 ms coalesce window.
  EXPECT_GE(hold.max_us, 30'000);
  EXPECT_LE(hold.max_us, cfg.degradation.coalesce_hold.ToMicros());

  // The held interaction's graph carries the hold as its own node and still tiles.
  bool saw_hold_node = false;
  for (const InteractionRecord& rec : attribution.records()) {
    ASSERT_EQ(rec.StageSum(), rec.total_us());
    CriticalPathGraph g = CriticalPathGraph::Build(rec);
    ASSERT_EQ(CriticalPathGraph::SegmentSumUs(g.ExtractCriticalPath()), rec.total_us());
    if (rec.stage_us[Idx(AttrStage::kDegradationHold)] > 0) {
      for (const CriticalPathNode& node : g.nodes()) {
        if (std::string(node.stage) == "degradation-hold") {
          saw_hold_node = node.duration_us() ==
                          rec.stage_us[Idx(AttrStage::kDegradationHold)];
        }
      }
      // The hold must come out of the wait, not inflate it: sched-wait and the hold are
      // disjoint intervals of [arrived, pass_start].
      EXPECT_LE(rec.stage_us[Idx(AttrStage::kSchedWait)] +
                    rec.stage_us[Idx(AttrStage::kDegradationHold)],
                rec.total_us());
    }
  }
  EXPECT_TRUE(saw_hold_node);
}

// The WAN backpressure gauges register on faulted runs (and only there, so fault-free
// metric output keeps its exact bytes).
TEST(CriticalPathTest, WanBackpressureGaugesRegisterOnFaultedRuns) {
  auto gauge_names = [](const ServerConfig& cfg, MetricsRegistry& registry) {
    Simulator sim;
    Server server(sim, OsProfile::Tse(), cfg);
    std::vector<std::string> names;
    for (const MetricsRegistry::Gauge& g : registry.gauges()) {
      names.push_back(g.name);
    }
    return names;
  };
  auto has = [](const std::vector<std::string>& names, const std::string& want) {
    for (const std::string& n : names) {
      if (n == want) {
        return true;
      }
    }
    return false;
  };

  MetricsRegistry clean_registry;
  ServerConfig clean_cfg;
  clean_cfg.metrics = &clean_registry;
  std::vector<std::string> clean = gauge_names(clean_cfg, clean_registry);
  EXPECT_FALSE(has(clean, "wan_queue_depth"));
  EXPECT_FALSE(has(clean, "reliable_window_fill"));

  MetricsRegistry wan_registry;
  ServerConfig wan_cfg;
  wan_cfg.metrics = &wan_registry;
  WanProfile lte = WanProfileByName("lte");
  wan_cfg.faults.link.wan.extra_delay = lte.extra_delay;
  wan_cfg.faults.link.wan.down_rate = lte.down_rate;
  wan_cfg.faults.link.wan.up_rate = lte.up_rate;
  wan_cfg.faults.link.wan.queue_bytes = lte.queue_bytes;
  std::vector<std::string> wan = gauge_names(wan_cfg, wan_registry);
  EXPECT_TRUE(has(wan, "wan_queue_depth"));
  EXPECT_TRUE(has(wan, "reliable_window_fill"));

  // Both gauges poll clean on an idle server: empty queue, empty window.
  Simulator sim;
  MetricsRegistry registry;
  wan_cfg.metrics = &registry;
  Server server(sim, OsProfile::Tse(), wan_cfg);
  for (const MetricsRegistry::Gauge& g : registry.gauges()) {
    if (g.name == "wan_queue_depth" || g.name == "reliable_window_fill") {
      EXPECT_EQ(g.poll(), 0.0) << g.name;
    }
  }
}

}  // namespace
}  // namespace tcs
