// Differential resume-vs-cold harness: the tentpole guarantee.
//
// A consolidation run forked from a mid-flight snapshot must be indistinguishable from
// the run that never stopped: every report field (modulo wall_ms), every per-user stall
// sample to the microsecond, every kernel counter, and the full end-of-run dynamic
// state (compared as a byte-identical end snapshot). The sweep crosses capture points
// spanning the run's phases — mid-login-storm, mid-page-in (first keystrokes against a
// cold working set), mid-retransmit steady state, mid-degradation-upshift (controller
// just armed), and deep steady state under WAN pathology — with LAN/dsl/lte/satellite
// link conditions and ten seeds.
//
// The capacity-bisection equivalence test locks down the other consumer: the
// checkpointed capacity search must return the same answer as the cold one, on cache
// misses (snapshot taken, run continues cold) and on cache hits (probe forked from the
// previous invocation's prefix snapshot) alike.

#include "src/core/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/experiments.h"
#include "src/obs/slo.h"
#include "src/session/os_profile.h"
#include "src/sim/snapshot.h"

namespace tcs {
namespace {

ConsolidationOptions BaseOptions(uint64_t seed) {
  ConsolidationOptions o;
  o.users = 3;
  o.duration = Duration::Millis(2500);
  o.seed = seed;
  o.ram = Bytes::MiB(48);  // small enough that login and typing page
  o.burst_cpu = Duration::Millis(100);
  o.burst_period = Duration::Seconds(2);
  o.sinks = 1;
  return o;
}

void ExpectSloEqual(const SloReport& a, const SloReport& b) {
  EXPECT_EQ(a.active, b.active);
  EXPECT_EQ(a.passed, b.passed);
  EXPECT_EQ(a.violated_at_us, b.violated_at_us);
  EXPECT_EQ(a.violating_objective, b.violating_objective);
  ASSERT_EQ(a.objectives.size(), b.objectives.size());
  for (size_t i = 0; i < a.objectives.size(); ++i) {
    EXPECT_EQ(a.objectives[i].objective, b.objectives[i].objective);
    EXPECT_EQ(a.objectives[i].limit, b.objectives[i].limit);
    EXPECT_EQ(a.objectives[i].observed, b.objectives[i].observed);
    EXPECT_EQ(a.objectives[i].passed, b.objectives[i].passed);
  }
  EXPECT_EQ(a.postmortems, b.postmortems);
}

// Field-exact equality, doubles compared bitwise; wall_ms is the one excluded field.
void ExpectResultsEqual(const ConsolidationResult& cold,
                        const ConsolidationResult& resumed) {
  EXPECT_EQ(cold.os_name, resumed.os_name);
  EXPECT_EQ(cold.protocol, resumed.protocol);
  EXPECT_EQ(cold.users, resumed.users);
  EXPECT_EQ(cold.cpu_utilization, resumed.cpu_utilization);
  EXPECT_EQ(cold.link_utilization, resumed.link_utilization);
  EXPECT_EQ(cold.resident_pages, resumed.resident_pages);
  EXPECT_EQ(cold.total_frames, resumed.total_frames);
  EXPECT_EQ(cold.shared_segments, resumed.shared_segments);
  EXPECT_EQ(cold.shared_attaches, resumed.shared_attaches);
  EXPECT_EQ(cold.page_faults, resumed.page_faults);
  EXPECT_EQ(cold.coalesced_waits, resumed.coalesced_waits);
  EXPECT_EQ(cold.avg_stall_ms, resumed.avg_stall_ms);
  EXPECT_EQ(cold.worst_stall_ms, resumed.worst_stall_ms);
  EXPECT_EQ(cold.worst_p99_stall_ms, resumed.worst_p99_stall_ms);
  ASSERT_EQ(cold.per_user.size(), resumed.per_user.size());
  for (size_t u = 0; u < cold.per_user.size(); ++u) {
    SCOPED_TRACE("user " + std::to_string(u));
    const UserStallStats& a = cold.per_user[u];
    const UserStallStats& b = resumed.per_user[u];
    EXPECT_EQ(a.updates, b.updates);
    EXPECT_EQ(a.avg_stall_ms, b.avg_stall_ms);
    EXPECT_EQ(a.max_stall_ms, b.max_stall_ms);
    EXPECT_EQ(a.jitter_ms, b.jitter_ms);
    EXPECT_EQ(a.p50_stall_ms, b.p50_stall_ms);
    EXPECT_EQ(a.p99_stall_ms, b.p99_stall_ms);
    EXPECT_EQ(a.wire_bytes.count(), b.wire_bytes.count());
    EXPECT_EQ(a.link_share, b.link_share);
    // The sample-for-sample guarantee: exact microseconds, in arrival order.
    EXPECT_EQ(a.stall_samples_us, b.stall_samples_us);
  }
  ExpectSloEqual(cold.slo, resumed.slo);
  EXPECT_EQ(cold.run.events_executed, resumed.run.events_executed);
  EXPECT_EQ(cold.run.pending_events, resumed.run.pending_events);
}

void ExpectSameBytes(const std::vector<uint8_t>& a, const std::vector<uint8_t>& b) {
  if (a == b) {
    return;
  }
  auto sa = SnapshotSectionSpans(a);
  auto sb = SnapshotSectionSpans(b);
  for (const auto& [tag, span] : sa) {
    auto it = sb.find(tag);
    if (it == sb.end()) {
      ADD_FAILURE() << "section " << CheckpointSectionName(tag) << " missing";
      continue;
    }
    bool same =
        (span.second - span.first) == (it->second.second - it->second.first) &&
        std::equal(a.begin() + static_cast<ptrdiff_t>(span.first),
                   a.begin() + static_cast<ptrdiff_t>(span.second),
                   b.begin() + static_cast<ptrdiff_t>(it->second.first));
    EXPECT_TRUE(same) << "section " << CheckpointSectionName(tag)
                      << " diverges between resumed and cold end state";
  }
  ADD_FAILURE() << "end-state snapshots differ";
}

struct LinkCondition {
  const char* name;  // "" = LAN
  bool degrade;
};

constexpr LinkCondition kConditions[] = {
    {"", false},
    {"dsl", true},
    {"lte", true},
    {"satellite", true},
};

// The run's phase landmarks (start_delay = 1 s, degradation arms at 2 s, end 3.5 s):
// mid-login-storm, mid-page-in (first keystrokes fault their working sets in),
// mid-retransmit steady typing, mid-degradation-upshift, deep pathology steady state.
constexpr int64_t kCapturePointsMs[] = {200, 1200, 1800, 2200, 3000};

TEST(CheckpointDifferential, ResumeMatchesColdAcrossConditionsAndSeeds) {
  for (const LinkCondition& cond : kConditions) {
    for (uint64_t seed = 1; seed <= 10; ++seed) {
      SCOPED_TRACE(std::string("condition ") +
                   (cond.name[0] != '\0' ? cond.name : "lan") + " seed " +
                   std::to_string(seed));
      ConsolidationOptions options = BaseOptions(seed);
      if (cond.name[0] != '\0') {
        options.wan = WanProfileByName(cond.name);
      }
      options.degrade = cond.degrade;

      // The cold arm pauses at each capture point to snapshot — pausing the event loop
      // is invisible to the model, so this run IS the cold run.
      ConsolidationRun cold_run(OsProfile::Tse(), options);
      std::vector<std::vector<uint8_t>> snaps;
      for (int64_t ms : kCapturePointsMs) {
        cold_run.RunUntil(TimePoint::Zero() + Duration::Millis(ms));
        snaps.push_back(cold_run.Snapshot());
      }
      cold_run.RunToEnd();
      std::vector<uint8_t> cold_end = cold_run.Snapshot();
      ConsolidationResult cold = cold_run.Finish();

      for (size_t i = 0; i < snaps.size(); ++i) {
        SCOPED_TRACE("capture point " + std::to_string(kCapturePointsMs[i]) + " ms");
        ConsolidationRun fork(OsProfile::Tse(), options);
        fork.Restore(snaps[i]);
        fork.RunToEnd();
        ExpectSameBytes(cold_end, fork.Snapshot());
        ExpectResultsEqual(cold, fork.Finish());
      }
    }
  }
}

TEST(CheckpointDifferential, ResumeMatchesColdWithSloWatchdog) {
  ConsolidationOptions options = BaseOptions(4);
  options.wan = WanProfileByName("lte");
  options.degrade = true;
  SloSpec spec;
  spec.max_worst_p99_ms = 10000.0;  // generous: exercises the live checks, not freezes
  spec.max_link_backlog_bytes = 512 * 1024 * 1024;
  ObsConfig obs;
  obs.slo = &spec;

  ConsolidationRun cold_run(OsProfile::Tse(), options, &obs);
  cold_run.RunUntil(TimePoint::Zero() + Duration::Millis(2200));
  std::vector<uint8_t> snap = cold_run.Snapshot();
  cold_run.RunToEnd();
  std::vector<uint8_t> cold_end = cold_run.Snapshot();
  ConsolidationResult cold = cold_run.Finish();

  ObsConfig fork_obs;
  fork_obs.slo = &spec;
  ConsolidationRun fork(OsProfile::Tse(), options, &fork_obs);
  fork.Restore(snap);
  fork.RunToEnd();
  ExpectSameBytes(cold_end, fork.Snapshot());
  ExpectResultsEqual(cold, fork.Finish());
}

// The postmortem --rewind contract: fork from a checkpoint taken before an SLO
// violation and the replay hits the violation at the exact same virtual instant.
TEST(CheckpointDifferential, RewoundReplayReproducesTheViolationInstant) {
  ConsolidationOptions options = BaseOptions(2);
  options.duration = Duration::Seconds(4);
  SloSpec spec;
  // No real run with live samples stays under 1 ms. The workload must actually produce
  // display updates: the live watchdog only sees *sampled* stalls (the total-starvation
  // penalty is a whole-run score), so an overcommitted config that thrashes every user
  // into zero updates would never trip it. With this shape the violation lands at the
  // first 100 ms check after typing starts (~1.3 s virtual) — comfortably past the
  // 250/500/750 ms checkpoints, since typists only begin at the default 1 s start_delay.
  spec.max_worst_p99_ms = 1.0;
  ObsConfig obs;
  obs.slo = &spec;

  ConsolidationRun monitored(OsProfile::Tse(), options, &obs);
  std::vector<std::pair<TimePoint, std::vector<uint8_t>>> ring;
  TimePoint end = monitored.end_time();
  for (TimePoint t = TimePoint::Zero() + Duration::Millis(250); t <= end;
       t = t + Duration::Millis(250)) {
    monitored.RunUntil(t);
    if (monitored.SloViolated()) {
      break;
    }
    ring.emplace_back(t, monitored.Snapshot());
  }
  ASSERT_TRUE(monitored.SloViolated())
      << "workload did not trip the SLO; tighten the spec";
  int64_t violated_at_us = monitored.SloViolatedAtUs();

  // Newest checkpoint at least 500 virtual ms before the violation.
  const std::vector<uint8_t>* chosen = nullptr;
  for (const auto& [t, blob] : ring) {
    if (t.ToMicros() <= violated_at_us - 500 * 1000) {
      chosen = &blob;
    }
  }
  ASSERT_NE(chosen, nullptr);

  ObsConfig replay_obs;
  replay_obs.slo = &spec;
  ConsolidationRun replay(OsProfile::Tse(), options, &replay_obs);
  replay.Restore(*chosen);
  replay.RunToEnd();
  EXPECT_TRUE(replay.SloViolated());
  EXPECT_EQ(replay.SloViolatedAtUs(), violated_at_us);
}

// ---------------------------------------------------------------------------
// Capacity bisection equivalence.

CapacityOptions SmallCapacity() {
  CapacityOptions o;
  o.max_users = 6;
  o.behavior.duration = Duration::Millis(2500);
  o.behavior.seed = 11;
  o.behavior.ram = Bytes::MiB(48);
  return o;
}

void ExpectCapacityEqual(const CapacityResult& a, const CapacityResult& b) {
  EXPECT_EQ(a.os_name, b.os_name);
  EXPECT_EQ(a.protocol, b.protocol);
  EXPECT_EQ(a.utilization_sized_users, b.utilization_sized_users);
  EXPECT_EQ(a.latency_sized_users, b.latency_sized_users);
  EXPECT_EQ(a.utilization_over_admits, b.utilization_over_admits);
  ASSERT_EQ(a.probes.size(), b.probes.size());
  for (size_t i = 0; i < a.probes.size(); ++i) {
    SCOPED_TRACE("probe " + std::to_string(i));
    ExpectResultsEqual(a.probes[i], b.probes[i]);
  }
  EXPECT_EQ(a.run.events_executed, b.run.events_executed);
  EXPECT_EQ(a.run.pending_events, b.run.pending_events);
}

TEST(CheckpointDifferential, CapacitySearchEquivalence) {
  CapacityOptions options = SmallCapacity();
  CapacityResult cold = RunServerCapacity(OsProfile::Tse(), options);

  CapacityCheckpointCache cache;
  CapacityResult first = RunServerCapacityCheckpointed(OsProfile::Tse(), options, cache);
  EXPECT_EQ(cache.hits, 0);
  EXPECT_GT(cache.misses, 0);
  ExpectCapacityEqual(cold, first);

  // Second invocation forks every probe from the cached prefix snapshots.
  int64_t misses_before = cache.misses;
  CapacityResult second =
      RunServerCapacityCheckpointed(OsProfile::Tse(), options, cache);
  EXPECT_EQ(cache.misses, misses_before);
  EXPECT_EQ(cache.hits, misses_before);
  ExpectCapacityEqual(cold, second);
}

}  // namespace
}  // namespace tcs
