#include "src/util/lz.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "src/sim/random.h"

namespace tcs {
namespace {

std::vector<uint8_t> FromString(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

TEST(LzCodecTest, EmptyInput) {
  std::vector<uint8_t> empty;
  auto compressed = LzCodec::Compress(empty);
  EXPECT_TRUE(compressed.empty());
  auto restored = LzCodec::Decompress(compressed);
  ASSERT_TRUE(restored.has_value());
  EXPECT_TRUE(restored->empty());
}

TEST(LzCodecTest, RoundTripShortLiteral) {
  auto input = FromString("abc");
  auto restored = LzCodec::Decompress(LzCodec::Compress(input));
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(*restored, input);
}

TEST(LzCodecTest, RoundTripRepetitive) {
  auto input = FromString(std::string(10000, 'x'));
  auto compressed = LzCodec::Compress(input);
  auto restored = LzCodec::Decompress(compressed);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(*restored, input);
  // Highly repetitive data must compress hard.
  EXPECT_LT(compressed.size(), input.size() / 20);
}

TEST(LzCodecTest, RoundTripPatterned) {
  std::string pattern;
  for (int i = 0; i < 500; ++i) {
    pattern += "the quick brown fox ";
  }
  auto input = FromString(pattern);
  auto compressed = LzCodec::Compress(input);
  auto restored = LzCodec::Decompress(compressed);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(*restored, input);
  EXPECT_LT(compressed.size(), input.size() / 4);
}

TEST(LzCodecTest, IncompressibleDataExpandsOnlySlightly) {
  Rng rng(1234);
  std::vector<uint8_t> input(65536);
  rng.FillBytes(input.data(), input.size(), 0.0);
  auto compressed = LzCodec::Compress(input);
  auto restored = LzCodec::Decompress(compressed);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(*restored, input);
  // Worst-case bound: one control byte per 128 literals, plus slack.
  EXPECT_LE(compressed.size(), input.size() + input.size() / 128 + 2);
}

TEST(LzCodecTest, OverlappingMatchReplicates) {
  // "ababab..." forces matches whose offset is smaller than their length.
  std::string s;
  for (int i = 0; i < 1000; ++i) {
    s += "ab";
  }
  auto input = FromString(s);
  auto restored = LzCodec::Decompress(LzCodec::Compress(input));
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(*restored, input);
}

TEST(LzCodecTest, DecompressRejectsTruncatedLiteralRun) {
  // Control byte claims 16 literals; only 3 present.
  std::vector<uint8_t> bogus = {0x0F, 'a', 'b', 'c'};
  EXPECT_FALSE(LzCodec::Decompress(bogus).has_value());
}

TEST(LzCodecTest, DecompressRejectsTruncatedMatchHeader) {
  std::vector<uint8_t> bogus = {0x80, 0x01};  // missing second offset byte
  EXPECT_FALSE(LzCodec::Decompress(bogus).has_value());
}

TEST(LzCodecTest, DecompressRejectsBadOffset) {
  // Literal 'a' then match with offset 5 (only 1 byte of history) and offset 0.
  std::vector<uint8_t> bad_offset = {0x00, 'a', 0x80, 0x05, 0x00};
  EXPECT_FALSE(LzCodec::Decompress(bad_offset).has_value());
  std::vector<uint8_t> zero_offset = {0x00, 'a', 0x80, 0x00, 0x00};
  EXPECT_FALSE(LzCodec::Decompress(zero_offset).has_value());
}

// Property sweep: round-trip holds across sizes and entropy levels.
class LzRoundTripTest
    : public ::testing::TestWithParam<std::tuple<size_t, double, uint64_t>> {};

TEST_P(LzRoundTripTest, RoundTripIdentity) {
  auto [size, redundancy, seed] = GetParam();
  Rng rng(seed);
  std::vector<uint8_t> input(size);
  rng.FillBytes(input.data(), input.size(), redundancy);
  auto compressed = LzCodec::Compress(input);
  auto restored = LzCodec::Decompress(compressed);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(*restored, input);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LzRoundTripTest,
    ::testing::Combine(::testing::Values<size_t>(1, 2, 3, 127, 128, 129, 4096, 70000),
                       ::testing::Values(0.0, 0.5, 0.9, 0.99),
                       ::testing::Values<uint64_t>(1, 99)));

TEST(LzCodecTest, HigherRedundancyCompressesBetter) {
  Rng rng(77);
  std::vector<uint8_t> low(32768);
  std::vector<uint8_t> high(32768);
  rng.FillBytes(low.data(), low.size(), 0.2);
  rng.FillBytes(high.data(), high.size(), 0.95);
  EXPECT_GT(LzCodec::CompressedSize(low), LzCodec::CompressedSize(high));
}

}  // namespace
}  // namespace tcs
