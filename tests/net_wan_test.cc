// WAN pathology on the link layer: Gilbert–Elliott burst loss (determinism and
// burstiness), the bounded bufferbloat queue's drop-tail behaviour, asymmetric up/down
// serialization rates, per-frame jitter, and ReliableChannel's bounded send window.

#include <gtest/gtest.h>

#include <vector>

#include "src/fault/fault_injector.h"
#include "src/net/link.h"
#include "src/net/reliable.h"
#include "src/util/config_error.h"

namespace tcs {
namespace {

LinkFaultPlan BurstLossPlan() {
  LinkFaultPlan plan;
  plan.wan.ge_p_good_to_bad = 0.2;
  plan.wan.ge_p_bad_to_good = 0.3;
  plan.wan.ge_loss_good = 0.0;
  plan.wan.ge_loss_bad = 1.0;  // every bad-state frame dies: fates trace the chain
  return plan;
}

std::vector<LinkFaultInjector::Fate> ClassifyFrames(LinkFaultInjector& injector, int n) {
  std::vector<LinkFaultInjector::Fate> fates;
  for (int i = 0; i < n; ++i) {
    TimePoint start = TimePoint::Zero() + Duration::Millis(i);
    fates.push_back(injector.Classify(start, start + Duration::Micros(100)));
  }
  return fates;
}

TEST(GilbertElliottTest, FateSequenceIsDeterministicPerSeed) {
  LinkFaultInjector a(BurstLossPlan(), 42);
  LinkFaultInjector b(BurstLossPlan(), 42);
  EXPECT_EQ(ClassifyFrames(a, 500), ClassifyFrames(b, 500));
  EXPECT_EQ(a.burst_losses(), b.burst_losses());

  LinkFaultInjector c(BurstLossPlan(), 43);
  EXPECT_NE(ClassifyFrames(a, 500), ClassifyFrames(c, 500));
}

TEST(GilbertElliottTest, LossesComeInBurstsAndAreCountedAsBurstLosses) {
  LinkFaultInjector injector(BurstLossPlan(), 7);
  std::vector<LinkFaultInjector::Fate> fates = ClassifyFrames(injector, 1000);
  // With Bernoulli loss disabled, every loss is the chain's doing.
  EXPECT_GT(injector.burst_losses(), 0);
  EXPECT_EQ(injector.burst_losses(), injector.frames_lost());
  // The chain spends p_gb/(p_gb+p_bg) = 40% of its time bad (all of it lossy here).
  EXPECT_NEAR(injector.BadStateFraction(), 0.4, 0.1);
  // Bursts: mean bad-state dwell is 1/p_bg ≈ 3.3 frames, so consecutive losses must
  // appear — a plain Bernoulli stream at the same average rate rarely pairs them up.
  int longest_run = 0;
  int run = 0;
  for (LinkFaultInjector::Fate f : fates) {
    run = (f == LinkFaultInjector::Fate::kLost) ? run + 1 : 0;
    longest_run = std::max(longest_run, run);
  }
  EXPECT_GE(longest_run, 3);
}

TEST(GilbertElliottTest, EmptyWanPlanStaysInert) {
  LinkFaultPlan plan;
  plan.loss_rate = 0.01;  // classic Bernoulli faults only
  LinkFaultInjector injector(plan, 5);
  EXPECT_FALSE(injector.wan_active());
  ClassifyFrames(injector, 200);
  EXPECT_EQ(injector.burst_losses(), 0);
  EXPECT_DOUBLE_EQ(injector.BadStateFraction(), 0.0);
}

TEST(WanLinkTest, DownRateOverridesSerializationExactly) {
  // A 10 Mbps link under a 2 Mbps WAN downlink must deliver exactly like a plain
  // 2 Mbps link (no extra delay, no jitter, no loss configured).
  Simulator sim_wan;
  LinkConfig cfg;
  cfg.rate = BitsPerSecond::Mbps(10);
  Link wan_link(sim_wan, cfg);
  LinkFaultPlan plan;
  plan.wan.down_rate = BitsPerSecond::Mbps(2);
  plan.wan.up_rate = BitsPerSecond::Kbps(256);
  LinkFaultInjector injector(plan, 1);
  wan_link.SetFaultInjector(&injector);
  EXPECT_EQ(wan_link.DownRate().bps(), BitsPerSecond::Mbps(2).bps());
  EXPECT_EQ(wan_link.UpRate().bps(), BitsPerSecond::Kbps(256).bps());

  Simulator sim_lan;
  LinkConfig slow = cfg;
  slow.rate = BitsPerSecond::Mbps(2);
  Link lan_link(sim_lan, slow);
  EXPECT_EQ(lan_link.DownRate().bps(), BitsPerSecond::Mbps(2).bps());

  TimePoint wan_delivered;
  TimePoint lan_delivered;
  wan_link.Send(Bytes::Of(1200), [&] { wan_delivered = sim_wan.Now(); });
  lan_link.Send(Bytes::Of(1200), [&] { lan_delivered = sim_lan.Now(); });
  sim_wan.RunFor(Duration::Seconds(1));
  sim_lan.RunFor(Duration::Seconds(1));
  EXPECT_EQ(wan_delivered, lan_delivered);
  EXPECT_GT(wan_delivered, TimePoint::Zero());
}

TEST(WanLinkTest, ExtraDelayAndJitterShiftDeliveryDeterministically) {
  auto deliver_at = [](uint64_t seed) {
    Simulator sim;
    Link link(sim);
    LinkFaultPlan plan;
    plan.wan.extra_delay = Duration::Millis(10);
    plan.wan.jitter = Duration::Millis(5);
    LinkFaultInjector injector(plan, seed);
    link.SetFaultInjector(&injector);
    TimePoint delivered;
    link.Send(Bytes::Of(500), [&] { delivered = sim.Now(); });
    sim.RunFor(Duration::Seconds(1));
    return delivered;
  };
  // Baseline: the same frame with no WAN profile.
  Simulator sim;
  Link plain(sim);
  TimePoint base;
  plain.Send(Bytes::Of(500), [&] { base = sim.Now(); });
  sim.RunFor(Duration::Seconds(1));

  TimePoint d1 = deliver_at(9);
  EXPECT_GE(d1 - base, Duration::Millis(10));
  EXPECT_LT(d1 - base, Duration::Millis(15));
  EXPECT_EQ(d1, deliver_at(9));  // same seed, same jitter draw
}

TEST(WanLinkTest, DropTailBoundsTheBufferbloatQueue) {
  Simulator sim;
  LinkConfig cfg;
  cfg.rate = BitsPerSecond::Mbps(10);
  Link link(sim, cfg);
  LinkFaultPlan plan;
  plan.wan.down_rate = BitsPerSecond::Mbps(1);
  plan.wan.queue_bytes = Bytes::KiB(2);
  LinkFaultInjector injector(plan, 3);
  link.SetFaultInjector(&injector);

  int64_t delivered = 0;
  for (int i = 0; i < 20; ++i) {
    link.Send(Bytes::Of(1000), nullptr, &delivered);
    // The backlog never exceeds the bound by more than the one frame being accepted.
    EXPECT_LE(link.BacklogBytesAt(sim.Now()).count(),
              plan.wan.queue_bytes.count() + 1000 + cfg.framing.count());
  }
  sim.RunFor(Duration::Seconds(5));
  EXPECT_GT(link.wan_queue_drops(), 0);
  EXPECT_LT(delivered, 20);
  // Ledger stays closed: every attempt either arrived or was counted lost.
  EXPECT_EQ(link.frames_sent(), link.frames_delivered() + link.frames_lost());
  EXPECT_EQ(link.frames_delivered(), delivered);
  EXPECT_GE(link.frames_lost(), link.wan_queue_drops());
}

TEST(ReliableWindowTest, FullWindowShedsAtTheDoor) {
  Simulator sim;
  Link link(sim);
  ReliableChannelConfig cfg;
  cfg.window_frames = 4;
  ReliableChannel channel(sim, link, cfg);

  int64_t delivered = 0;
  for (int i = 0; i < 10; ++i) {
    channel.Send(Bytes::Of(200), nullptr, &delivered);
  }
  // Four accepted (in flight), six refused before getting a sequence number.
  EXPECT_EQ(channel.frames_sent(), 4);
  EXPECT_EQ(channel.frames_shed(), 6);
  EXPECT_EQ(channel.frames_in_flight(), 4);
  EXPECT_TRUE(channel.InBackpressure());

  sim.RunFor(Duration::Seconds(2));
  EXPECT_EQ(channel.frames_delivered(), 4);
  EXPECT_EQ(delivered, 4);  // shed frames never fire callbacks or bump tallies
  EXPECT_EQ(channel.frames_in_flight(), 0);
  EXPECT_DOUBLE_EQ(channel.WindowFill(), 0.0);
}

TEST(ReliableWindowTest, UnboundedWindowNeverSheds) {
  Simulator sim;
  Link link(sim);
  ReliableChannelConfig cfg;
  cfg.window_frames = 0;  // explicit opt-out
  ReliableChannel channel(sim, link, cfg);
  for (int i = 0; i < 100; ++i) {
    channel.Send(Bytes::Of(200));
  }
  EXPECT_EQ(channel.frames_shed(), 0);
  EXPECT_DOUBLE_EQ(channel.WindowFill(), 0.0);
  EXPECT_FALSE(channel.InBackpressure());
  sim.RunFor(Duration::Seconds(2));
  EXPECT_EQ(channel.frames_delivered(), 100);
}

TEST(ReliableWindowTest, ConfigValidationRejectsBrokenConfigs) {
  ReliableChannelConfig cfg;
  cfg.min_rto = Duration::Zero();
  EXPECT_THROW(Validated(cfg), ConfigError);

  cfg = ReliableChannelConfig{};
  cfg.max_rto = cfg.min_rto - Duration::Millis(1);
  EXPECT_THROW(Validated(cfg), ConfigError);

  cfg = ReliableChannelConfig{};
  cfg.max_attempts = 0;
  EXPECT_THROW(Validated(cfg), ConfigError);

  cfg = ReliableChannelConfig{};
  cfg.ack_bytes = Bytes::Zero();
  EXPECT_THROW(Validated(cfg), ConfigError);

  cfg = ReliableChannelConfig{};
  cfg.window_frames = -1;
  EXPECT_THROW(Validated(cfg), ConfigError);

  EXPECT_NO_THROW(Validated(ReliableChannelConfig{}));
}

}  // namespace
}  // namespace tcs
