#include "src/cpu/idle_profiler.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/cpu/linux_scheduler.h"
#include "src/sim/simulator.h"

namespace tcs {
namespace {

CpuConfig NoSwitchCost() {
  CpuConfig cfg;
  cfg.context_switch_cost = Duration::Zero();
  return cfg;
}

TEST(IdleLoopProfilerTest, FragmentedBurstCoalescesIntoOnePeriod) {
  Simulator sim;
  Cpu cpu(sim, std::make_unique<LinuxScheduler>(), NoSwitchCost());
  IdleLoopProfiler profiler(cpu);
  Thread* t = cpu.CreateThread("t", ThreadClass::kBatch, 0);
  cpu.PostWork(*t, Duration::Millis(25));  // 3 quanta back to back
  sim.Run();
  profiler.Flush();
  ASSERT_EQ(profiler.busy_periods().size(), 1u);
  EXPECT_EQ(profiler.busy_periods()[0], Duration::Millis(25));
}

TEST(IdleLoopProfilerTest, SeparatedBurstsAreSeparatePeriods) {
  Simulator sim;
  Cpu cpu(sim, std::make_unique<LinuxScheduler>(), NoSwitchCost());
  IdleLoopProfiler profiler(cpu);
  Thread* t = cpu.CreateThread("t", ThreadClass::kBatch, 0);
  cpu.PostWork(*t, Duration::Millis(5));
  sim.Schedule(Duration::Millis(100), [&] { cpu.PostWork(*t, Duration::Millis(3)); });
  sim.Run();
  profiler.Flush();
  ASSERT_EQ(profiler.busy_periods().size(), 2u);
  EXPECT_EQ(profiler.busy_periods()[0], Duration::Millis(5));
  EXPECT_EQ(profiler.busy_periods()[1], Duration::Millis(3));
}

TEST(IdleLoopProfilerTest, InterleavedThreadsFormOneBusyPeriod) {
  Simulator sim;
  Cpu cpu(sim, std::make_unique<LinuxScheduler>(), NoSwitchCost());
  IdleLoopProfiler profiler(cpu);
  Thread* a = cpu.CreateThread("a", ThreadClass::kBatch, 0);
  Thread* b = cpu.CreateThread("b", ThreadClass::kBatch, 0);
  cpu.PostWork(*a, Duration::Millis(15));
  cpu.PostWork(*b, Duration::Millis(15));
  sim.Run();
  profiler.Flush();
  // The CPU never went idle: one 30 ms busy period regardless of thread switches.
  ASSERT_EQ(profiler.busy_periods().size(), 1u);
  EXPECT_EQ(profiler.busy_periods()[0], Duration::Millis(30));
}

TEST(IdleLoopProfilerTest, UtilizationBuckets) {
  Simulator sim;
  Cpu cpu(sim, std::make_unique<LinuxScheduler>(), NoSwitchCost());
  IdleLoopProfiler profiler(cpu, Duration::Millis(100));
  Thread* t = cpu.CreateThread("t", ThreadClass::kBatch, 0);
  cpu.PostWork(*t, Duration::Millis(50));  // busy [0,50) within bucket 0
  sim.RunUntil(TimePoint::FromMicros(300000));
  profiler.Flush();
  EXPECT_NEAR(profiler.UtilizationAt(0), 0.5, 1e-9);
}

TEST(IdleLoopProfilerTest, CumulativeCurveIsMonotoneAndTotals) {
  Simulator sim;
  Cpu cpu(sim, std::make_unique<LinuxScheduler>(), NoSwitchCost());
  IdleLoopProfiler profiler(cpu);
  Thread* t = cpu.CreateThread("t", ThreadClass::kBatch, 0);
  // Bursts of 5, 3, 5, 8 ms separated by idle gaps.
  Duration bursts[] = {Duration::Millis(5), Duration::Millis(3), Duration::Millis(5),
                       Duration::Millis(8)};
  TimePoint at = TimePoint::Zero();
  for (Duration b : bursts) {
    sim.At(at, [&cpu, t, b] { cpu.PostWork(*t, b); });
    at += Duration::Millis(50);
  }
  sim.Run();
  profiler.Flush();
  auto curve = profiler.CumulativeLatencyCurve();
  ASSERT_EQ(curve.size(), 3u);  // 3, 5, 8 (the two 5s merge into one point)
  EXPECT_EQ(curve[0].event_length, Duration::Millis(3));
  EXPECT_EQ(curve[0].cumulative_latency, Duration::Millis(3));
  EXPECT_EQ(curve[1].event_length, Duration::Millis(5));
  EXPECT_EQ(curve[1].cumulative_latency, Duration::Millis(13));
  EXPECT_EQ(curve[2].event_length, Duration::Millis(8));
  EXPECT_EQ(curve[2].cumulative_latency, Duration::Millis(21));
  EXPECT_EQ(profiler.TotalBusy(), Duration::Millis(21));
}

TEST(IdleLoopProfilerTest, FlushIsIdempotent) {
  Simulator sim;
  Cpu cpu(sim, std::make_unique<LinuxScheduler>(), NoSwitchCost());
  IdleLoopProfiler profiler(cpu);
  Thread* t = cpu.CreateThread("t", ThreadClass::kBatch, 0);
  cpu.PostWork(*t, Duration::Millis(5));
  sim.Run();
  profiler.Flush();
  profiler.Flush();
  EXPECT_EQ(profiler.busy_periods().size(), 1u);
}

}  // namespace
}  // namespace tcs
