#include "src/util/time_series.h"

#include <gtest/gtest.h>

namespace tcs {
namespace {

TEST(TimeSeriesTest, AddGoesToCorrectBucket) {
  TimeSeries ts(Duration::Millis(100));
  ts.Add(TimePoint::FromMicros(50000), 1.0);   // bucket 0
  ts.Add(TimePoint::FromMicros(150000), 2.0);  // bucket 1
  ts.Add(TimePoint::FromMicros(160000), 3.0);  // bucket 1
  ASSERT_EQ(ts.bucket_count(), 2u);
  EXPECT_DOUBLE_EQ(ts.Sum(0), 1.0);
  EXPECT_DOUBLE_EQ(ts.Sum(1), 5.0);
  EXPECT_EQ(ts.Count(1), 2);
  EXPECT_DOUBLE_EQ(ts.Mean(1), 2.5);
}

TEST(TimeSeriesTest, BucketBoundaries) {
  TimeSeries ts(Duration::Millis(10));
  ts.Add(TimePoint::FromMicros(9999), 1.0);   // bucket 0
  ts.Add(TimePoint::FromMicros(10000), 1.0);  // bucket 1 (boundary belongs to next)
  EXPECT_DOUBLE_EQ(ts.Sum(0), 1.0);
  EXPECT_DOUBLE_EQ(ts.Sum(1), 1.0);
  EXPECT_EQ(ts.BucketStart(1), TimePoint::FromMicros(10000));
  EXPECT_EQ(ts.BucketMid(1), TimePoint::FromMicros(15000));
}

TEST(TimeSeriesTest, AddSpreadSplitsProportionally) {
  TimeSeries ts(Duration::Millis(100));
  // 250 ms interval starting at 50 ms: buckets get 50/100/100 of the weight.
  ts.AddSpread(TimePoint::FromMicros(50000), TimePoint::FromMicros(300000), 250.0);
  ASSERT_EQ(ts.bucket_count(), 3u);
  EXPECT_DOUBLE_EQ(ts.Sum(0), 50.0);
  EXPECT_DOUBLE_EQ(ts.Sum(1), 100.0);
  EXPECT_DOUBLE_EQ(ts.Sum(2), 100.0);
  EXPECT_DOUBLE_EQ(ts.TotalSum(), 250.0);
}

TEST(TimeSeriesTest, AddSpreadWithinOneBucket) {
  TimeSeries ts(Duration::Millis(100));
  ts.AddSpread(TimePoint::FromMicros(10000), TimePoint::FromMicros(20000), 7.0);
  ASSERT_EQ(ts.bucket_count(), 1u);
  EXPECT_DOUBLE_EQ(ts.Sum(0), 7.0);
}

TEST(TimeSeriesTest, AddSpreadZeroLengthFallsBackToAdd) {
  TimeSeries ts(Duration::Millis(100));
  ts.AddSpread(TimePoint::FromMicros(10000), TimePoint::FromMicros(10000), 3.0);
  EXPECT_DOUBLE_EQ(ts.Sum(0), 3.0);
}

TEST(TimeSeriesTest, RatePerSecond) {
  TimeSeries ts(Duration::Seconds(1));
  ts.Add(TimePoint::FromMicros(500000), 1250000.0);  // 1.25 MB in one second
  EXPECT_DOUBLE_EQ(ts.RatePerSecond(0), 1250000.0);
}

TEST(TimeSeriesTest, ExactBoundaryAlignedSpread) {
  TimeSeries ts(Duration::Millis(10));
  ts.AddSpread(TimePoint::FromMicros(0), TimePoint::FromMicros(30000), 30.0);
  ASSERT_EQ(ts.bucket_count(), 3u);
  EXPECT_DOUBLE_EQ(ts.Sum(0), 10.0);
  EXPECT_DOUBLE_EQ(ts.Sum(1), 10.0);
  EXPECT_DOUBLE_EQ(ts.Sum(2), 10.0);
}

}  // namespace
}  // namespace tcs
