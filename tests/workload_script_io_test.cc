#include "src/workload/script_io.h"

#include <gtest/gtest.h>

#include "src/proto/x_protocol.h"

namespace tcs {
namespace {

TEST(ScriptIoTest, SerializeParseRoundTripOnGeneratedScripts) {
  for (auto script : {AppScript::WordProcessor(Rng(5), 80),
                      AppScript::PhotoEditor(Rng(6), 80),
                      AppScript::ControlPanel(Rng(7), 80)}) {
    std::string text = SerializeScript(script);
    std::string error;
    auto parsed = ParseScript(text, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->name(), script.name());
    EXPECT_EQ(parsed->steps().size(), script.steps().size());
    EXPECT_EQ(parsed->TotalInputEvents(), script.TotalInputEvents());
    EXPECT_EQ(parsed->TotalDrawCommands(), script.TotalDrawCommands());
    EXPECT_EQ(parsed->TotalDuration(), script.TotalDuration());
    // Semantic identity: re-serialization is byte-identical.
    EXPECT_EQ(SerializeScript(*parsed), text);
  }
}

TEST(ScriptIoTest, HandwrittenTraceParses) {
  const std::string trace = R"(# a tiny session
script demo
step 250
key press 30
key release 30
text 1
step 300
move 100 120
button press
button release
rect 80 24
image 42 32 32 1024 512
sync 800
)";
  std::string error;
  auto parsed = ParseScript(trace, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->name(), "demo");
  ASSERT_EQ(parsed->steps().size(), 2u);
  EXPECT_EQ(parsed->steps()[0].inputs.size(), 2u);
  EXPECT_EQ(parsed->steps()[0].draws.size(), 1u);
  EXPECT_EQ(parsed->steps()[1].inputs.size(), 3u);
  ASSERT_EQ(parsed->steps()[1].draws.size(), 3u);
  const DrawCommand& img = parsed->steps()[1].draws[1];
  EXPECT_EQ(img.op, DrawOp::kPutImage);
  EXPECT_EQ(img.bitmap.content_hash, 42u);
  EXPECT_EQ(img.bitmap.raw_bytes, Bytes::Of(1024));
  EXPECT_EQ(img.bitmap.compressed_bytes, Bytes::Of(512));
  EXPECT_EQ(parsed->steps()[1].think, Duration::Millis(300));
}

TEST(ScriptIoTest, CommentsAndBlankLinesIgnored) {
  auto parsed = ParseScript("# only comments\n\n   \n# more\n");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->steps().empty());
}

TEST(ScriptIoTest, RejectsUnknownDirective) {
  std::string error;
  EXPECT_FALSE(ParseScript("step 100\nfrobnicate 1\n", &error).has_value());
  EXPECT_NE(error.find("unknown directive"), std::string::npos);
  EXPECT_NE(error.find("line 2"), std::string::npos);
}

TEST(ScriptIoTest, RejectsContentBeforeFirstStep) {
  std::string error;
  EXPECT_FALSE(ParseScript("text 5\n", &error).has_value());
  EXPECT_NE(error.find("before the first 'step'"), std::string::npos);
}

TEST(ScriptIoTest, RejectsBadArity) {
  std::string error;
  EXPECT_FALSE(ParseScript("step 100\nrect 5\n", &error).has_value());
  EXPECT_FALSE(ParseScript("step 100\nkey sideways 3\n", &error).has_value());
  EXPECT_FALSE(ParseScript("step 100\nimage 1 2 3\n", &error).has_value());
  EXPECT_FALSE(ParseScript("step -5\n", &error).has_value());
}

TEST(ScriptIoTest, RejectsTrailingTokens) {
  std::string error;
  EXPECT_FALSE(ParseScript("step 100\ntext 5 extra\n", &error).has_value());
  EXPECT_NE(error.find("trailing"), std::string::npos);
}

TEST(ScriptIoTest, ParsedTraceReplays) {
  auto parsed = ParseScript("script t\nstep 100\ntext 10\nstep 100\nrect 10 10\n");
  ASSERT_TRUE(parsed.has_value());
  Simulator sim;
  Link link(sim);
  MessageSender display(link, HeaderModel::TcpIp());
  MessageSender input(link, HeaderModel::TcpIp());
  ProtoTap tap(Duration::Millis(100));
  XProtocol x(sim, display, input, &tap, Rng(1));
  bool done = false;
  parsed->Replay(sim, x, [&] { done = true; });
  sim.Run();
  EXPECT_TRUE(done);
  EXPECT_GT(tap.messages(Channel::kDisplay), 0);
}

}  // namespace
}  // namespace tcs
