// Differential tests for the incremental percentile sketch: on random streams with
// queries interleaved at random points, every answer must equal the naive
// sort-and-scan reference — the sketch is an optimization, never an approximation.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "src/metrics/latency.h"
#include "src/util/percentile_sketch.h"
#include "src/util/stats.h"

namespace tcs {
namespace {

// The pre-sketch reference: copy, sort, nearest-rank scan.
int64_t ReferenceNearestRank(std::vector<int64_t> samples, double q) {
  std::sort(samples.begin(), samples.end());
  auto n = static_cast<int64_t>(samples.size());
  auto rank = static_cast<int64_t>(q * static_cast<double>(n) + 0.999999999);
  rank = std::clamp<int64_t>(rank, 1, n);
  return samples[static_cast<size_t>(rank - 1)];
}

double ReferenceInterpolated(std::vector<double> samples, double q) {
  std::sort(samples.begin(), samples.end());
  q = std::clamp(q, 0.0, 1.0);
  double rank = q * static_cast<double>(samples.size() - 1);
  auto lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, samples.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

constexpr double kQuantiles[] = {0.0, 0.01, 0.25, 0.50, 0.75, 0.90, 0.99, 1.0};

TEST(PercentileSketchTest, MatchesSortAndScanAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    std::mt19937_64 gen(seed);
    std::uniform_int_distribution<int64_t> value(0, 2'000'000);
    std::uniform_int_distribution<int> burst(1, 200);

    PercentileSketch<int64_t> sketch;
    std::vector<int64_t> reference;
    // Interleave bursts of appends with full quantile sweeps, so compaction runs with
    // pending deltas of many different sizes (including zero: back-to-back queries).
    for (int round = 0; round < 20; ++round) {
      int n = burst(gen);
      for (int i = 0; i < n; ++i) {
        int64_t v = value(gen);
        sketch.Add(v);
        reference.push_back(v);
      }
      for (double q : kQuantiles) {
        ASSERT_EQ(sketch.NearestRank(q), ReferenceNearestRank(reference, q))
            << "seed " << seed << " round " << round << " q " << q;
      }
      ASSERT_EQ(sketch.Min(), *std::min_element(reference.begin(), reference.end()));
      ASSERT_EQ(sketch.Max(), *std::max_element(reference.begin(), reference.end()));
    }
    ASSERT_EQ(sketch.size(), reference.size());
  }
}

TEST(PercentileSketchTest, InterpolatedMatchesSampleSetReference) {
  for (uint64_t seed = 100; seed < 110; ++seed) {
    std::mt19937_64 gen(seed);
    std::uniform_real_distribution<double> value(0.0, 500.0);

    PercentileSketch<double> sketch;
    std::vector<double> reference;
    for (int i = 0; i < 500; ++i) {
      double v = value(gen);
      sketch.Add(v);
      reference.push_back(v);
      if (i % 37 == 0) {
        for (double q : kQuantiles) {
          ASSERT_DOUBLE_EQ(sketch.Interpolated(q), ReferenceInterpolated(reference, q))
              << "seed " << seed << " i " << i << " q " << q;
        }
      }
    }
  }
}

TEST(PercentileSketchTest, DuplicatesAndSortedRuns) {
  PercentileSketch<int64_t> sketch;
  std::vector<int64_t> reference;
  // Pathological shapes for merge-based maintenance: all-equal, ascending, descending.
  for (int i = 0; i < 50; ++i) {
    sketch.Add(7);
    reference.push_back(7);
  }
  EXPECT_EQ(sketch.NearestRank(0.5), 7);
  for (int64_t v = 0; v < 50; ++v) {
    sketch.Add(v);
    reference.push_back(v);
  }
  for (int64_t v = 100; v > 50; --v) {
    sketch.Add(v);
    reference.push_back(v);
  }
  for (double q : kQuantiles) {
    EXPECT_EQ(sketch.NearestRank(q), ReferenceNearestRank(reference, q)) << "q " << q;
  }
}

// The LatencyRecorder rides on the sketch; its percentile answers under interleaved
// Record/Percentile traffic must match the sort-every-query original, and the
// non-percentile statistics must be untouched by query timing.
TEST(LatencyRecorderSketchTest, DifferentialAgainstSortAndScan) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    std::mt19937_64 gen(seed);
    std::uniform_int_distribution<int64_t> us(0, 400'000);

    LatencyRecorder rec;
    std::vector<int64_t> reference;
    for (int i = 0; i < 800; ++i) {
      int64_t v = us(gen);
      rec.Record(Duration::Micros(v));
      reference.push_back(v);
      if (i % 61 == 0) {
        for (double q : {0.5, 0.9, 0.99}) {
          ASSERT_EQ(rec.Percentile(q).ToMicros(), ReferenceNearestRank(reference, q))
              << "seed " << seed << " i " << i << " q " << q;
        }
      }
    }
    // Mean and Jitter come from exact integer accumulators; reproduce them directly.
    int64_t total = 0;
    for (int64_t v : reference) {
      total += v;
    }
    auto n = static_cast<int64_t>(reference.size());
    EXPECT_EQ(rec.Mean().ToMicros(), (total + n / 2) / n);
    __int128 sum_sq = 0;
    for (int64_t v : reference) {
      sum_sq += static_cast<__int128>(v) * v;
    }
    __int128 num = static_cast<__int128>(n) * sum_sq -
                   static_cast<__int128>(total) * total;
    double var = static_cast<double>(num) / (static_cast<double>(n) * static_cast<double>(n));
    EXPECT_EQ(rec.Jitter().ToMicros(),
              static_cast<int64_t>(std::sqrt(var) + 0.5));
    // samples_us() stays in arrival order regardless of interleaved queries.
    ASSERT_EQ(rec.samples_us().size(), reference.size());
    EXPECT_EQ(rec.samples_us(), reference);
  }
}

// Regression: empty percentile queries must return the value-initialized sentinel, not
// read past the end of an empty vector. The SLO watchdog's live p99 source polls
// recorders from its first tick — typically before the first interaction has landed —
// so "query before any Add" is a hot path, not an edge case.
TEST(PercentileSketchTest, EmptyQueriesReturnSentinel) {
  PercentileSketch<int64_t> sketch;
  EXPECT_TRUE(sketch.empty());
  EXPECT_EQ(sketch.NearestRank(0.5), 0);
  EXPECT_EQ(sketch.NearestRank(0.99), 0);
  EXPECT_DOUBLE_EQ(sketch.Interpolated(0.5), 0.0);
  EXPECT_EQ(sketch.Min(), 0);
  EXPECT_EQ(sketch.Max(), 0);
  // Still consistent after the first real sample.
  sketch.Add(42);
  EXPECT_EQ(sketch.NearestRank(0.99), 42);

  PercentileSketch<double> dsketch;
  EXPECT_DOUBLE_EQ(dsketch.NearestRank(0.99), 0.0);
  EXPECT_DOUBLE_EQ(dsketch.Interpolated(0.99), 0.0);
}

TEST(LatencyRecorderSketchTest, EmptyRecorderAnswersZeroEverywhere) {
  LatencyRecorder rec;
  EXPECT_EQ(rec.count(), 0);
  EXPECT_EQ(rec.Percentile(0.5), Duration::Zero());
  EXPECT_EQ(rec.Percentile(0.99), Duration::Zero());
  EXPECT_DOUBLE_EQ(rec.PercentileMs(0.99), 0.0);
  EXPECT_EQ(rec.Mean(), Duration::Zero());
  EXPECT_EQ(rec.Jitter(), Duration::Zero());
  EXPECT_DOUBLE_EQ(rec.PerceptibleFraction(), 0.0);
  EXPECT_TRUE(rec.samples_us().empty());
}

TEST(SampleSetSketchTest, DifferentialAgainstSortAndScan) {
  for (uint64_t seed = 42; seed < 52; ++seed) {
    std::mt19937_64 gen(seed);
    std::uniform_real_distribution<double> value(-100.0, 100.0);

    SampleSet set;
    std::vector<double> reference;
    for (int i = 0; i < 300; ++i) {
      double v = value(gen);
      set.Add(v);
      reference.push_back(v);
      if (i % 23 == 0) {
        ASSERT_DOUBLE_EQ(set.Percentile(0.5), ReferenceInterpolated(reference, 0.5));
        ASSERT_DOUBLE_EQ(set.Min(), *std::min_element(reference.begin(), reference.end()));
        ASSERT_DOUBLE_EQ(set.Max(), *std::max_element(reference.begin(), reference.end()));
      }
    }
  }
}

}  // namespace
}  // namespace tcs
