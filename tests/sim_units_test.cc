#include "src/sim/units.h"

#include <gtest/gtest.h>

namespace tcs {
namespace {

TEST(BytesTest, FactoriesAndArithmetic) {
  EXPECT_EQ(Bytes::Of(10).count(), 10);
  EXPECT_EQ(Bytes::KiB(2).count(), 2048);
  EXPECT_EQ(Bytes::MiB(1).count(), 1048576);
  EXPECT_EQ((Bytes::Of(3) + Bytes::Of(4)).count(), 7);
  EXPECT_EQ((Bytes::Of(10) - Bytes::Of(4)).count(), 6);
  EXPECT_EQ((Bytes::Of(10) * 3).count(), 30);
  EXPECT_EQ((3 * Bytes::Of(10)).count(), 30);
  EXPECT_DOUBLE_EQ(Bytes::KiB(3) / Bytes::KiB(2), 1.5);
  Bytes b = Bytes::Of(5);
  b += Bytes::Of(5);
  EXPECT_EQ(b.count(), 10);
  b -= Bytes::Of(3);
  EXPECT_EQ(b.count(), 7);
}

TEST(BytesTest, ToString) {
  EXPECT_EQ(Bytes::Of(512).ToString(), "512B");
  EXPECT_EQ(Bytes::KiB(2).ToString(), "2.00KiB");
  EXPECT_EQ(Bytes::MiB(3).ToString(), "3.00MiB");
}

TEST(BitsPerSecondTest, Factories) {
  EXPECT_EQ(BitsPerSecond::Mbps(10).bps(), 10000000);
  EXPECT_EQ(BitsPerSecond::Kbps(56).bps(), 56000);
  EXPECT_DOUBLE_EQ(BitsPerSecond::MbpsF(1.5).ToMbpsF(), 1.5);
}

TEST(TransmissionDelayTest, ExactValues) {
  // 1500 bytes at 10 Mbps = 12000 bits / 10 bits-per-us = 1200 us.
  EXPECT_EQ(TransmissionDelay(Bytes::Of(1500), BitsPerSecond::Mbps(10)),
            Duration::Micros(1200));
  // 64 bytes at 10 Mbps = 512 bits -> 51.2 us, rounded up to 52.
  EXPECT_EQ(TransmissionDelay(Bytes::Of(64), BitsPerSecond::Mbps(10)),
            Duration::Micros(52));
  EXPECT_EQ(TransmissionDelay(Bytes::Zero(), BitsPerSecond::Mbps(10)), Duration::Zero());
}

TEST(TransmissionDelayTest, RoundsUpNeverDown) {
  // 1 byte at 9 Mbps = 8 bits -> 0.888.. us -> 1 us.
  EXPECT_EQ(TransmissionDelay(Bytes::Of(1), BitsPerSecond::Mbps(9)), Duration::Micros(1));
}

TEST(RateOverTest, ComputesAverageRate) {
  // 1,250,000 bytes over 1 s = 10 Mbps.
  EXPECT_EQ(RateOver(Bytes::Of(1250000), Duration::Seconds(1)).bps(), 10000000);
  EXPECT_EQ(RateOver(Bytes::Of(100), Duration::Zero()).bps(), 0);
}

}  // namespace
}  // namespace tcs
