// Property-based invariant tests: randomized operation sequences against the invariants
// each component must hold regardless of input. Parameterized over seeds (TEST_P) so each
// property is checked against many independent random streams.

#include <gtest/gtest.h>

#include <tuple>
#include <memory>
#include <vector>

#include "src/cpu/cpu.h"
#include "src/cpu/linux_scheduler.h"
#include "src/cpu/nt_scheduler.h"
#include "src/cpu/svr4_scheduler.h"
#include "src/mem/pager.h"
#include "src/net/link.h"
#include "src/proto/bitmap_cache.h"
#include "src/sim/random.h"
#include "src/session/server.h"
#include "src/sim/simulator.h"
#include "src/util/lz.h"

namespace tcs {
namespace {

class SeededProperty : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values<uint64_t>(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// --- Event queue: time ordering holds under random schedule/cancel interleaving.
TEST_P(SeededProperty, EventQueueAlwaysPopsInTimeOrder) {
  Rng rng(GetParam());
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 500; ++i) {
    if (!ids.empty() && rng.NextBool(0.3)) {
      q.Cancel(ids[static_cast<size_t>(rng.NextBelow(ids.size()))]);
    } else {
      ids.push_back(q.Schedule(TimePoint::FromMicros(rng.NextInt(0, 10000)), [] {}));
    }
  }
  TimePoint last = TimePoint::Zero();
  while (!q.empty()) {
    TimePoint when;
    q.Pop(&when);
    EXPECT_GE(when, last);
    last = when;
  }
}

// --- Simulator: identical seeds produce bit-identical event interleavings.
TEST_P(SeededProperty, SimulatorRunsAreDeterministic) {
  auto run = [seed = GetParam()]() {
    Simulator sim;
    Rng rng(seed);
    std::vector<int64_t> trace;
    std::function<void(int)> spawn = [&](int depth) {
      trace.push_back(sim.Now().ToMicros());
      if (depth < 4) {
        int children = static_cast<int>(rng.NextBelow(3)) + 1;
        for (int c = 0; c < children; ++c) {
          sim.Schedule(Duration::Micros(rng.NextInt(1, 500)), [&, depth] {
            spawn(depth + 1);
          });
        }
      }
    };
    sim.Schedule(Duration::Zero(), [&] { spawn(0); });
    sim.Run();
    return trace;
  };
  EXPECT_EQ(run(), run());
}

// --- CPU engine: thread CPU time is conserved — the sum of all threads' accounted CPU
// equals the busy time minus context-switch overhead, and never exceeds wall time.
TEST_P(SeededProperty, CpuTimeConservation) {
  Rng rng(GetParam());
  Simulator sim;
  CpuConfig cfg;
  cfg.context_switch_cost = Duration::Micros(10);
  Cpu cpu(sim, std::make_unique<NtScheduler>(), cfg);
  std::vector<Thread*> threads;
  for (int i = 0; i < 6; ++i) {
    threads.push_back(cpu.CreateThread("t", i % 2 == 0 ? ThreadClass::kGui : ThreadClass::kBatch,
                                       8 + i % 3));
  }
  Duration posted = Duration::Zero();
  for (int i = 0; i < 100; ++i) {
    Duration cost = Duration::Micros(rng.NextInt(100, 20000));
    Thread* t = threads[static_cast<size_t>(rng.NextBelow(threads.size()))];
    sim.Schedule(Duration::Micros(rng.NextInt(0, 500000)), [&cpu, t, cost, &rng] {
      cpu.PostWork(*t, cost, nullptr,
                   rng.NextBool(0.5) ? WakeReason::kInputEvent : WakeReason::kOther);
    });
    posted += cost;
  }
  sim.Run();
  Duration executed = Duration::Zero();
  for (Thread* t : threads) {
    executed += t->cpu_time();
  }
  EXPECT_EQ(executed, posted);             // all posted work ran to completion
  EXPECT_GE(cpu.busy_time(), executed);    // busy time includes switch overhead
  EXPECT_LE(cpu.busy_time() - executed, Duration::Millis(50));  // bounded overhead
  EXPECT_LE(executed, sim.Now() - TimePoint::Zero());           // can't exceed wall time
}

// --- Schedulers: no runnable thread is lost (every PostWork completes) under all three
// scheduler policies.
TEST_P(SeededProperty, NoWorkLostUnderAnySchedulerPolicy) {
  for (int which = 0; which < 3; ++which) {
    Rng rng(GetParam() * 3 + static_cast<uint64_t>(which));
    Simulator sim;
    std::unique_ptr<Scheduler> sched;
    if (which == 0) {
      sched = std::make_unique<NtScheduler>();
    } else if (which == 1) {
      sched = std::make_unique<LinuxScheduler>();
    } else {
      sched = std::make_unique<Svr4InteractiveScheduler>();
    }
    Cpu cpu(sim, std::move(sched));
    std::vector<Thread*> threads;
    for (int i = 0; i < 5; ++i) {
      threads.push_back(cpu.CreateThread(
          "t", static_cast<ThreadClass>(rng.NextBelow(3)), static_cast<int>(rng.NextBelow(16))));
    }
    int completions = 0;
    int expected = 0;
    for (int i = 0; i < 60; ++i) {
      Thread* t = threads[static_cast<size_t>(rng.NextBelow(threads.size()))];
      Duration cost = Duration::Micros(rng.NextInt(10, 30000));
      ++expected;
      sim.Schedule(Duration::Micros(rng.NextInt(0, 200000)),
                   [&cpu, t, cost, &completions] {
                     cpu.PostWork(*t, cost, [&completions] { ++completions; });
                   });
    }
    sim.Run();
    EXPECT_EQ(completions, expected) << "scheduler variant " << which;
  }
}

// --- Pager: frame accounting stays consistent under random access patterns.
TEST_P(SeededProperty, PagerFrameAccountingInvariants) {
  Rng rng(GetParam());
  Simulator sim;
  Disk disk(sim, Rng(GetParam() ^ 0xD15C));
  PagerConfig cfg;
  cfg.total_frames = 64;
  Pager pager(sim, disk, cfg);
  std::vector<AddressSpace*> spaces;
  for (int i = 0; i < 3; ++i) {
    spaces.push_back(pager.CreateAddressSpace("as", rng.NextBool(0.5)));
  }
  for (int i = 0; i < 400; ++i) {
    AddressSpace* as = spaces[static_cast<size_t>(rng.NextBelow(spaces.size()))];
    pager.Access(*as, rng.NextBelow(200), rng.NextBool(0.4), nullptr);
    ASSERT_LE(pager.frames_used(), pager.total_frames());
    size_t resident_total = 0;
    for (AddressSpace* s : spaces) {
      resident_total += s->resident_pages();
    }
    ASSERT_EQ(resident_total, pager.frames_used());
  }
  sim.Run();
  EXPECT_EQ(pager.hits() + pager.faults(), 400);
}

// --- Bitmap cache: capacity is never exceeded, and hits+misses == lookups.
TEST_P(SeededProperty, BitmapCacheInvariants) {
  Rng rng(GetParam());
  for (CachePolicy policy : {CachePolicy::kLru, CachePolicy::kLoopAware}) {
    BitmapCacheConfig cfg;
    cfg.capacity = Bytes::Of(10000);
    cfg.policy = policy;
    BitmapCache cache(cfg);
    for (int i = 0; i < 2000; ++i) {
      uint64_t hash = rng.NextBelow(60);
      if (!cache.Lookup(hash)) {
        cache.Insert(hash, Bytes::Of(static_cast<int64_t>(rng.NextBelow(3000)) + 1));
      }
      ASSERT_LE(cache.used(), cache.capacity());
    }
    EXPECT_EQ(cache.hits() + cache.misses(), 2000);
    // The cache still answers correctly after churn: inserting then looking up hits.
    cache.Insert(999, Bytes::Of(100));
    EXPECT_TRUE(cache.Lookup(999));
  }
}

// --- LZ codec: round-trip identity over structured random inputs (segments of varying
// redundancy concatenated, like real protocol streams).
TEST_P(SeededProperty, LzRoundTripOnMixedStreams) {
  Rng rng(GetParam());
  std::vector<uint8_t> input;
  int segments = static_cast<int>(rng.NextBelow(6)) + 1;
  for (int s = 0; s < segments; ++s) {
    size_t len = static_cast<size_t>(rng.NextBelow(8000));
    std::vector<uint8_t> seg(len);
    rng.FillBytes(seg.data(), len, rng.NextDouble());
    input.insert(input.end(), seg.begin(), seg.end());
  }
  auto restored = LzCodec::Decompress(LzCodec::Compress(input));
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(*restored, input);
}

// --- LZ codec: decompressing arbitrary bytes must never crash or mis-size; it either
// fails cleanly or produces output consistent with the stream's own claims.
TEST_P(SeededProperty, LzDecompressFuzzNeverCrashes) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    size_t len = static_cast<size_t>(rng.NextBelow(512));
    std::vector<uint8_t> garbage(len);
    rng.FillBytes(garbage.data(), len, rng.NextDouble());
    auto out = LzCodec::Decompress(garbage);
    if (out.has_value()) {
      // A match can expand at most kMaxMatch per 3 stream bytes; bound the output.
      EXPECT_LE(out->size(), len * LzCodec::kMaxMatch);
    }
  }
}

// --- LZ codec: truncating a valid compressed stream at any point fails cleanly or
// yields a prefix-consistent result, never UB.
TEST_P(SeededProperty, LzTruncationFuzz) {
  Rng rng(GetParam());
  std::vector<uint8_t> input(2000);
  rng.FillBytes(input.data(), input.size(), 0.8);
  auto compressed = LzCodec::Compress(input);
  for (size_t cut = 0; cut < compressed.size(); cut += 7) {
    std::vector<uint8_t> truncated(compressed.begin(),
                                   compressed.begin() + static_cast<ptrdiff_t>(cut));
    auto out = LzCodec::Decompress(truncated);
    if (out.has_value()) {
      ASSERT_LE(out->size(), input.size());
      EXPECT_TRUE(std::equal(out->begin(), out->end(), input.begin()));
    }
  }
}

// --- Link: deliveries are FIFO — completion times are monotone in send order.
TEST_P(SeededProperty, LinkDeliveriesAreFifo) {
  Rng rng(GetParam());
  Simulator sim;
  LinkConfig cfg;
  cfg.csma_cd = rng.NextBool(0.5);
  Link link(sim, cfg);
  std::vector<int64_t> deliveries;
  int sent = 0;
  for (int i = 0; i < 200; ++i) {
    sim.Schedule(Duration::Micros(rng.NextInt(0, 100000)), [&] {
      ++sent;
      link.Send(Bytes::Of(rng.NextInt(60, 1500)),
                [&] { deliveries.push_back(sim.Now().ToMicros()); });
    });
  }
  sim.Run();
  ASSERT_EQ(deliveries.size(), 200u);
  for (size_t i = 1; i < deliveries.size(); ++i) {
    EXPECT_GE(deliveries[i], deliveries[i - 1]);
  }
}

// --- End-to-end determinism: a full server scenario replayed with the same seed yields
// identical traffic and stall measurements.
TEST_P(SeededProperty, FullServerScenarioIsDeterministic) {
  auto run = [seed = GetParam()]() {
    Simulator sim;
    ServerConfig cfg;
    cfg.seed = seed;
    Server server(sim, OsProfile::Tse(), cfg);
    server.StartDaemons();
    Session& s = server.Login();
    server.StartSinks(3);
    int updates = 0;
    s.set_on_display_update([&](TimePoint) { ++updates; });
    PeriodicTask typing(sim, Duration::Millis(50), [&] { server.Keystroke(s); });
    typing.Start();
    sim.RunUntil(TimePoint::Zero() + Duration::Seconds(5));
    typing.Stop();
    return std::tuple(server.tap().total_counted_bytes().count(),
                      server.tap().total_messages(), updates,
                      server.cpu().busy_time().ToMicros());
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace tcs
