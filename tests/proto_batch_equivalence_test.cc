// Batch-vs-loop encode equivalence: SubmitDrawBatch must be a pure dispatch
// optimization. For every protocol, feeding the same command stream through
// per-command SubmitDraw and through SubmitDrawBatch (with identical flush boundaries
// and RNG seeds) must produce the identical message sequence, byte counts, and charged
// encode cost.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/proto/lbx_protocol.h"
#include "src/proto/rdp_protocol.h"
#include "src/proto/slim_protocol.h"
#include "src/proto/vnc_protocol.h"
#include "src/proto/x_protocol.h"

namespace tcs {
namespace {

struct ProtoFixture {
  ProtoFixture()
      : link(sim),
        display(link, HeaderModel::TcpIp()),
        input(link, HeaderModel::TcpIp()),
        tap(Duration::Millis(100)) {}

  template <typename P, typename... Args>
  std::unique_ptr<P> Make(Args&&... args) {
    return std::make_unique<P>(sim, display, input, &tap, Rng(1234),
                               std::forward<Args>(args)...);
  }

  Simulator sim;
  Link link;
  MessageSender display;
  MessageSender input;
  ProtoTap tap;
};

// Everything observable about an encode run: the ordered display-message sizes, the
// total server-side encode cost, and the tap's per-channel accounting.
struct Capture {
  std::vector<int64_t> display_sizes;
  int64_t encode_us = 0;
};

void Attach(DisplayProtocol& p, Capture& c) {
  p.set_display_message_hook([&c](Bytes b) { c.display_sizes.push_back(b.count()); });
  p.set_encode_cost_sink([&c](Duration d) { c.encode_us += d.ToMicros(); });
}

// A stream exercising every DrawOp, with repeats (bitmap-cache hits, glyph-cache hits)
// and fresh content (cache misses), split into uneven flush groups.
std::vector<std::vector<DrawCommand>> CommandGroups() {
  BitmapRef repeated = BitmapRef::Make(7, 64, 64, 0.5);
  BitmapRef fresh_a = BitmapRef::Make(100, 120, 80, 0.7);
  BitmapRef fresh_b = BitmapRef::Make(101, 120, 80, 0.7);
  return {
      {DrawCommand::Text(12), DrawCommand::Rect(40, 20), DrawCommand::Line(33)},
      {DrawCommand::PutImage(repeated)},
      {DrawCommand::CopyArea(200, 100), DrawCommand::PutImage(repeated),
       DrawCommand::PutImage(fresh_a), DrawCommand::Text(3)},
      {DrawCommand::Sync(Bytes::Of(120)), DrawCommand::Text(40),
       DrawCommand::PutImage(fresh_b), DrawCommand::Rect(5, 5),
       DrawCommand::PutImage(repeated)},
      {DrawCommand::Line(7), DrawCommand::Text(12)},  // same text length: glyph hits
  };
}

void DriveLooped(DisplayProtocol& p) {
  for (const auto& group : CommandGroups()) {
    for (const DrawCommand& cmd : group) {
      p.SubmitDraw(cmd);
    }
    p.Flush();
  }
}

void DriveBatched(DisplayProtocol& p) {
  for (const auto& group : CommandGroups()) {
    p.SubmitDrawBatch(group);
    p.Flush();
  }
}

void ExpectEquivalent(const ProtoFixture& loop_f, const Capture& loop_c,
                      const ProtoFixture& batch_f, const Capture& batch_c) {
  EXPECT_EQ(loop_c.display_sizes, batch_c.display_sizes);
  EXPECT_EQ(loop_c.encode_us, batch_c.encode_us);
  for (Channel ch : {Channel::kDisplay, Channel::kInput}) {
    EXPECT_EQ(loop_f.tap.messages(ch), batch_f.tap.messages(ch));
    EXPECT_EQ(loop_f.tap.payload_bytes(ch), batch_f.tap.payload_bytes(ch));
    EXPECT_EQ(loop_f.tap.counted_bytes(ch), batch_f.tap.counted_bytes(ch));
  }
}

template <typename P>
void RunEquivalence() {
  ProtoFixture loop_f;
  ProtoFixture batch_f;
  auto loop_p = loop_f.template Make<P>();
  auto batch_p = batch_f.template Make<P>();
  Capture loop_c;
  Capture batch_c;
  Attach(*loop_p, loop_c);
  Attach(*batch_p, batch_c);
  DriveLooped(*loop_p);
  DriveBatched(*batch_p);
  ASSERT_FALSE(loop_c.display_sizes.empty());
  ExpectEquivalent(loop_f, loop_c, batch_f, batch_c);
}

TEST(BatchEquivalenceTest, X) { RunEquivalence<XProtocol>(); }
TEST(BatchEquivalenceTest, Lbx) { RunEquivalence<LbxProtocol>(); }
TEST(BatchEquivalenceTest, Rdp) { RunEquivalence<RdpProtocol>(); }
TEST(BatchEquivalenceTest, Slim) { RunEquivalence<SlimProtocol>(); }

// VNC coalesces damage and ships on the client's pull cadence, so equivalence is
// checked after the pull loop has drained the dirty state.
TEST(BatchEquivalenceTest, Vnc) {
  ProtoFixture loop_f;
  ProtoFixture batch_f;
  auto loop_p = loop_f.Make<VncProtocol>();
  auto batch_p = batch_f.Make<VncProtocol>();
  Capture loop_c;
  Capture batch_c;
  Attach(*loop_p, loop_c);
  Attach(*batch_p, batch_c);
  loop_p->StartClientPull();
  batch_p->StartClientPull();
  DriveLooped(*loop_p);
  DriveBatched(*batch_p);
  loop_f.sim.RunUntil(TimePoint::Zero() + Duration::Millis(500));
  batch_f.sim.RunUntil(TimePoint::Zero() + Duration::Millis(500));
  ASSERT_FALSE(loop_c.display_sizes.empty());
  EXPECT_EQ(loop_p->updates_sent(), batch_p->updates_sent());
  ExpectEquivalent(loop_f, loop_c, batch_f, batch_c);
}

// The default base-class SubmitDrawBatch (the per-command fallback loop) must share the
// equivalence property — a protocol that never overrides it still batches correctly.
TEST(BatchEquivalenceTest, DefaultFallbackLoop) {
  class FallbackSlim final : public DisplayProtocol {
   public:
    FallbackSlim(Simulator& sim, MessageSender& d, MessageSender& i, ProtoTap* tap,
                 Rng rng)
        : DisplayProtocol(sim, d, i, tap), inner_(sim, d, i, nullptr, rng) {}
    void SubmitDraw(const DrawCommand& cmd) override {
      // Inherits the base-class SubmitDrawBatch loop.
      inner_.SubmitDraw(cmd);
    }
    void SubmitInput(const InputEvent& event) override { inner_.SubmitInput(event); }
    std::string name() const override { return "fallback"; }
    Bytes session_setup_bytes() const override { return Bytes::Zero(); }

   private:
    SlimProtocol inner_;
  };

  ProtoFixture loop_f;
  ProtoFixture batch_f;
  FallbackSlim loop_p(loop_f.sim, loop_f.display, loop_f.input, &loop_f.tap, Rng(9));
  FallbackSlim batch_p(batch_f.sim, batch_f.display, batch_f.input, &batch_f.tap, Rng(9));
  DriveLooped(loop_p);
  DriveBatched(batch_p);
  for (Channel ch : {Channel::kDisplay, Channel::kInput}) {
    EXPECT_EQ(loop_f.tap.messages(ch), batch_f.tap.messages(ch));
    EXPECT_EQ(loop_f.tap.payload_bytes(ch), batch_f.tap.payload_bytes(ch));
  }
}

}  // namespace
}  // namespace tcs
