#include "src/proto/bitmap_cache.h"

#include <gtest/gtest.h>

namespace tcs {
namespace {

BitmapCacheConfig SmallCache(int64_t capacity_bytes, CachePolicy policy = CachePolicy::kLru) {
  BitmapCacheConfig cfg;
  cfg.capacity = Bytes::Of(capacity_bytes);
  cfg.policy = policy;
  return cfg;
}

TEST(BitmapCacheTest, MissThenHit) {
  BitmapCache cache(SmallCache(1000));
  EXPECT_FALSE(cache.Lookup(1));
  cache.Insert(1, Bytes::Of(100));
  EXPECT_TRUE(cache.Lookup(1));
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.used(), Bytes::Of(100));
}

TEST(BitmapCacheTest, EvictsLruWhenFull) {
  BitmapCache cache(SmallCache(300));
  cache.Insert(1, Bytes::Of(100));
  cache.Insert(2, Bytes::Of(100));
  cache.Insert(3, Bytes::Of(100));
  EXPECT_TRUE(cache.Lookup(1));          // refresh 1: LRU order now 2,3,1
  cache.Insert(4, Bytes::Of(100));       // evicts 2
  EXPECT_TRUE(cache.Lookup(1));
  EXPECT_FALSE(cache.Lookup(2));
  EXPECT_TRUE(cache.Lookup(3));
  EXPECT_TRUE(cache.Lookup(4));
  EXPECT_EQ(cache.evictions(), 1);
}

TEST(BitmapCacheTest, OversizedEntryNotCached) {
  BitmapCache cache(SmallCache(100));
  cache.Insert(1, Bytes::Of(500));
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_FALSE(cache.Lookup(1));
}

TEST(BitmapCacheTest, DuplicateInsertIsNoOp) {
  BitmapCache cache(SmallCache(300));
  cache.Insert(1, Bytes::Of(100));
  cache.Insert(1, Bytes::Of(100));
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.used(), Bytes::Of(100));
}

TEST(BitmapCacheTest, MultiEntryEvictionForLargeInsert) {
  BitmapCache cache(SmallCache(300));
  cache.Insert(1, Bytes::Of(100));
  cache.Insert(2, Bytes::Of(100));
  cache.Insert(3, Bytes::Of(100));
  cache.Insert(4, Bytes::Of(250));  // must evict 1, 2, and 3
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_TRUE(cache.Lookup(4));
}

// §6.1.3's Cache Pathology: a looping animation one frame larger than the cache misses on
// EVERY frame under LRU — the Figure 7 cliff.
TEST(BitmapCacheTest, LoopingAnimationDefeatsLru) {
  const int64_t frame = 100;
  BitmapCache cache(SmallCache(10 * frame));  // holds 10 frames
  // 11-frame loop, three passes after warm-up.
  for (int pass = 0; pass < 4; ++pass) {
    for (uint64_t f = 0; f < 11; ++f) {
      if (!cache.Lookup(f)) {
        cache.Insert(f, Bytes::Of(frame));
      }
    }
  }
  // After the first pass, every lookup misses: 44 lookups, 0 hits beyond none.
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_EQ(cache.misses(), 44);
}

TEST(BitmapCacheTest, FittingAnimationAllHitsAfterFirstPass) {
  const int64_t frame = 100;
  BitmapCache cache(SmallCache(10 * frame));
  for (int pass = 0; pass < 4; ++pass) {
    for (uint64_t f = 0; f < 10; ++f) {
      if (!cache.Lookup(f)) {
        cache.Insert(f, Bytes::Of(frame));
      }
    }
  }
  EXPECT_EQ(cache.misses(), 10);  // first pass only
  EXPECT_EQ(cache.hits(), 30);
}

TEST(BitmapCacheTest, LoopAwarePolicyRescuesLoopingAnimation) {
  const int64_t frame = 100;
  BitmapCacheConfig cfg = SmallCache(10 * frame, CachePolicy::kLoopAware);
  BitmapCache cache(cfg);
  int64_t late_hits = 0;
  int64_t late_lookups = 0;
  for (int pass = 0; pass < 30; ++pass) {
    for (uint64_t f = 0; f < 11; ++f) {
      bool hit = cache.Lookup(f);
      if (!hit) {
        cache.Insert(f, Bytes::Of(frame));
      }
      if (pass >= 20) {
        ++late_lookups;
        late_hits += hit ? 1 : 0;
      }
    }
  }
  EXPECT_TRUE(cache.InLoopMode());
  // Steady state: a stable prefix stays resident; most lookups hit.
  EXPECT_GT(static_cast<double>(late_hits) / static_cast<double>(late_lookups), 0.7);
}

TEST(BitmapCacheTest, RefetchDetection) {
  BitmapCache cache(SmallCache(200));
  cache.Insert(1, Bytes::Of(100));
  cache.Insert(2, Bytes::Of(100));
  cache.Insert(3, Bytes::Of(100));  // evicts 1
  EXPECT_FALSE(cache.Lookup(1));    // this miss is a re-fetch
  EXPECT_EQ(cache.refetches(), 1);
}

TEST(BitmapCacheTest, CumulativeHitRatio) {
  BitmapCache cache(SmallCache(1000));
  EXPECT_DOUBLE_EQ(cache.CumulativeHitRatio(), 0.0);
  cache.Insert(1, Bytes::Of(10));
  for (int i = 0; i < 7; ++i) {
    cache.Lookup(1);
  }
  cache.Lookup(99);
  cache.Lookup(98);
  cache.Lookup(97);
  EXPECT_DOUBLE_EQ(cache.CumulativeHitRatio(), 0.7);
}

TEST(BitmapCacheTest, LruPolicyNeverEntersLoopMode) {
  BitmapCache cache(SmallCache(200, CachePolicy::kLru));
  for (int pass = 0; pass < 20; ++pass) {
    for (uint64_t f = 0; f < 3; ++f) {
      if (!cache.Lookup(f)) {
        cache.Insert(f, Bytes::Of(100));
      }
    }
  }
  EXPECT_FALSE(cache.InLoopMode());
}

}  // namespace
}  // namespace tcs
