// End-to-end tests over the Experiment API: each asserts the qualitative result the
// paper's corresponding figure/table reports. These are the repository's reproduction
// acceptance tests.

#include "src/core/experiments.h"

#include <gtest/gtest.h>

namespace tcs {
namespace {

TEST(IdleProfileExperimentTest, AggregateOrderingMatchesPaper) {
  auto tse = RunIdleProfile(OsProfile::Tse(), Duration::Seconds(120));
  auto nt = RunIdleProfile(OsProfile::NtWorkstation(), Duration::Seconds(120));
  auto lin = RunIdleProfile(OsProfile::LinuxX(), Duration::Seconds(120));
  // "TSE generates about three times the idle-state load that NT does, about seven times
  // that of Linux."
  EXPECT_GT(tse.total_busy, nt.total_busy * 2);
  EXPECT_GT(tse.total_busy, lin.total_busy * 5);
}

TEST(IdleProfileExperimentTest, TseSeesLongEventsOthersDoNot) {
  auto tse = RunIdleProfile(OsProfile::Tse(), Duration::Seconds(120));
  auto nt = RunIdleProfile(OsProfile::NtWorkstation(), Duration::Seconds(120));
  ASSERT_FALSE(tse.cumulative.empty());
  ASSERT_FALSE(nt.cumulative.empty());
  // TSE's event population includes ~250 ms and ~400 ms events; NT's tops out ~100 ms.
  EXPECT_GT(tse.cumulative.back().event_length, Duration::Millis(300));
  EXPECT_LE(nt.cumulative.back().event_length, Duration::Millis(150));
}

TEST(IdleProfileExperimentTest, UtilizationSeriesCoversTrace) {
  auto lin = RunIdleProfile(OsProfile::LinuxX(), Duration::Seconds(10));
  EXPECT_EQ(lin.utilization.size(), 100u);  // 100 ms buckets over 10 s
  for (double u : lin.utilization) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
}

TEST(TypingExperimentTest, NoLoadMeansNoStalls) {
  for (auto profile : {OsProfile::Tse(), OsProfile::LinuxX()}) {
    auto r = RunTypingUnderLoad(profile, 0, Duration::Seconds(20));
    EXPECT_LT(r.avg_stall_ms, 5.0) << profile.name;
  }
}

TEST(TypingExperimentTest, TseBlowsUpFasterThanLinux) {
  auto tse10 = RunTypingUnderLoad(OsProfile::Tse(), 10, Duration::Seconds(20));
  auto lin10 = RunTypingUnderLoad(OsProfile::LinuxX(), 10, Duration::Seconds(20));
  // At 10 load units TSE is already far past perception; Linux degrades linearly and is
  // still far lower.
  EXPECT_GT(tse10.avg_stall_ms, 300.0);
  EXPECT_LT(lin10.avg_stall_ms, 120.0);
  EXPECT_GT(tse10.avg_stall_ms, lin10.avg_stall_ms * 4);
}

TEST(TypingExperimentTest, LinuxGrowsLinearly) {
  auto l10 = RunTypingUnderLoad(OsProfile::LinuxX(), 10, Duration::Seconds(20));
  auto l20 = RunTypingUnderLoad(OsProfile::LinuxX(), 20, Duration::Seconds(20));
  auto l40 = RunTypingUnderLoad(OsProfile::LinuxX(), 40, Duration::Seconds(20));
  // Stall grows by a constant amount per added load unit (one quantum each): the
  // increment from 20->40 sinks is ~2x the increment from 10->20.
  double d1 = l20.avg_stall_ms - l10.avg_stall_ms;
  double d2 = l40.avg_stall_ms - l20.avg_stall_ms;
  EXPECT_GT(d1, 0.0);
  EXPECT_NEAR(d2 / d1, 2.0, 0.5);
}

TEST(TypingExperimentTest, Svr4InteractiveStaysFlat) {
  auto s0 = RunTypingUnderLoad(OsProfile::LinuxSvr4(), 0, Duration::Seconds(20));
  auto s20 = RunTypingUnderLoad(OsProfile::LinuxSvr4(), 20, Duration::Seconds(20));
  EXPECT_LT(s20.avg_stall_ms, s0.avg_stall_ms + 5.0);
}

TEST(MaximizeScenarioTest, PaperArithmetic) {
  // Stretch 3: 180 ms of boosted grace, then the 400 ms daemon, then the rest: 900 ms.
  EXPECT_EQ(RunMaximizeScenario(3, 1.0), Duration::Millis(900));
  // Stretch 1: 60 ms grace: 60 + 400 + 440 = 900 ms too (same total work), but a faster
  // CPU rescues the operation entirely.
  EXPECT_LT(RunMaximizeScenario(3, 3.0), Duration::Millis(180));
}

TEST(SessionMemoryTest, TablesMatchPaper) {
  auto tse = MeasureSessionMemory(OsProfile::Tse(), false);
  EXPECT_EQ(tse.total, Bytes::KiB(3244));
  EXPECT_EQ(tse.idle_system, Bytes::KiB(19 * 1024));
  EXPECT_EQ(tse.processes.size(), 5u);
  auto tse_light = MeasureSessionMemory(OsProfile::Tse(), true);
  EXPECT_EQ(tse_light.total, Bytes::KiB(2100));
  auto lin = MeasureSessionMemory(OsProfile::LinuxX(), false);
  EXPECT_EQ(lin.total, Bytes::KiB(752));
  EXPECT_EQ(lin.idle_system, Bytes::KiB(17 * 1024));
  // The measured resident pages agree with the specs (page-rounded).
  EXPECT_NEAR(static_cast<double>(lin.measured_resident.count()),
              static_cast<double>(lin.total.count()), 3 * 4096.0);
}

TEST(PagingExperimentTest, BelowFullDemandIsFast) {
  auto lin = RunPagingLatency(OsProfile::LinuxX(), false, 3);
  EXPECT_LT(lin.max_ms, 50.0);
}

TEST(PagingExperimentTest, FullDemandIsFarPastPerception) {
  auto lin = RunPagingLatency(OsProfile::LinuxX(), true, 5);
  auto tse = RunPagingLatency(OsProfile::Tse(), true, 5);
  // Paper: Linux averages ~11x the 100 ms threshold, TSE ~40x.
  EXPECT_GT(lin.avg_ms, 500.0);
  EXPECT_GT(tse.avg_ms, 2000.0);
  EXPECT_GT(tse.avg_ms, lin.avg_ms * 2);
  EXPECT_GT(lin.max_ms, lin.min_ms * 2);  // wide spread, as in the table
}

TEST(PagingExperimentTest, InteractiveProtectEliminatesPathology) {
  auto lin = RunPagingLatency(OsProfile::LinuxX(), true, 3, 1,
                              EvictionPolicy::kInteractiveProtect);
  EXPECT_LT(lin.max_ms, 50.0);
}

TEST(ProtocolTrafficTest, RdpIsMostEfficient) {
  auto rdp = RunAppWorkloadTraffic(ProtocolKind::kRdp, 1, 200);
  auto x = RunAppWorkloadTraffic(ProtocolKind::kX, 1, 200);
  auto lbx = RunAppWorkloadTraffic(ProtocolKind::kLbx, 1, 200);
  // "RDP is clearly the most efficient protocol, generating less than 30% of the byte
  // traffic of LBX and less than 15% of X" (our synthetic workload lands at ~38% / ~21%;
  // require < 45% / < 30% — see EXPERIMENTS.md for measured-vs-paper).
  EXPECT_LT(rdp.total_bytes, lbx.total_bytes * 45 / 100);
  EXPECT_LT(rdp.total_bytes, x.total_bytes * 30 / 100);
  // LBX halves X.
  EXPECT_LT(lbx.total_bytes, x.total_bytes * 70 / 100);
  // Message-size ordering: RDP > X > LBX.
  EXPECT_GT(rdp.avg_message_size, x.avg_message_size);
  EXPECT_GT(x.avg_message_size, lbx.avg_message_size);
  // RDP input traffic is a tiny fraction of X's.
  EXPECT_LT(rdp.input.bytes, x.input.bytes / 5);
}

TEST(ProtocolTrafficTest, VipSavingsOrdering) {
  auto rdp = RunAppWorkloadTraffic(ProtocolKind::kRdp, 1, 200);
  auto x = RunAppWorkloadTraffic(ProtocolKind::kX, 1, 200);
  auto lbx = RunAppWorkloadTraffic(ProtocolKind::kLbx, 1, 200);
  auto savings = [](const ProtocolTrafficResult& r) {
    return static_cast<double>(r.total_bytes - r.vip_bytes) /
           static_cast<double>(r.total_bytes);
  };
  // Smaller average messages benefit more from header elision: RDP < X < LBX.
  EXPECT_LT(savings(rdp), savings(x));
  EXPECT_LT(savings(x), savings(lbx));
}

TEST(WebPageTest, CombinedLoadIsNonLinear) {
  auto combined = RunWebPageLoad(ProtocolKind::kRdp, true, true, Duration::Seconds(120));
  auto marquee = RunWebPageLoad(ProtocolKind::kRdp, false, true, Duration::Seconds(120));
  auto banner = RunWebPageLoad(ProtocolKind::kRdp, true, false, Duration::Seconds(120));
  // Separately ~0.07 and ~0.01 Mbps; combined >1 Mbps: wildly non-additive.
  EXPECT_GT(combined.sustained_mbps, 1.0);
  EXPECT_LT(marquee.sustained_mbps, 0.15);
  EXPECT_LT(banner.sustained_mbps, 0.05);
  EXPECT_GT(combined.sustained_mbps,
            (marquee.sustained_mbps + banner.sustained_mbps) * 5);
}

TEST(GifAnimationTest, RdpCachesXDoesNot) {
  GifAnimationOptions opt;
  opt.duration = Duration::Seconds(10);
  auto x = RunGifAnimation(ProtocolKind::kX, opt);
  auto rdp = RunGifAnimation(ProtocolKind::kRdp, opt);
  EXPECT_GT(x.sustained_mbps, 2.0);
  EXPECT_LT(rdp.sustained_mbps, 0.1);
}

TEST(GifAnimationTest, CacheCliffAt65Frames) {
  GifAnimationOptions opt;
  opt.frame_period = Duration::Millis(200);
  opt.width = 200;
  opt.height = 150;
  opt.compression_ratio = 0.8;  // 24 000-byte frames vs the 1.5 MB cache
  opt.duration = Duration::Seconds(40);
  opt.frames = 65;
  auto fits = RunGifAnimation(ProtocolKind::kRdp, opt);
  opt.frames = 66;
  auto overflows = RunGifAnimation(ProtocolKind::kRdp, opt);
  // Figure 7: ~0.01 Mbps below the cliff, ~0.96 Mbps above.
  EXPECT_LT(fits.sustained_mbps, 0.05);
  EXPECT_GT(overflows.sustained_mbps, 0.8);
}

TEST(GifAnimationTest, LoopAwarePolicyRemovesCliff) {
  GifAnimationOptions opt;
  opt.frame_period = Duration::Millis(200);
  opt.width = 200;
  opt.height = 150;
  opt.compression_ratio = 0.8;
  opt.duration = Duration::Seconds(60);
  opt.frames = 66;
  opt.cache_policy = CachePolicy::kLoopAware;
  auto loop_aware = RunGifAnimation(ProtocolKind::kRdp, opt);
  opt.cache_policy = CachePolicy::kLru;
  auto lru = RunGifAnimation(ProtocolKind::kRdp, opt);
  EXPECT_LT(loop_aware.sustained_mbps, lru.sustained_mbps / 5);
}

TEST(CacheOverflowTest, HitRatioDecaysCpuStaysBusy) {
  auto r = RunCacheOverflow(66, Duration::Seconds(60));
  ASSERT_GE(r.cumulative_hit_ratio.size(), 50u);
  // Starts high thanks to the warm session UI, decays asymptotically toward zero.
  EXPECT_GT(r.cumulative_hit_ratio.front(), 0.5);
  EXPECT_LT(r.cumulative_hit_ratio.back(), r.cumulative_hit_ratio.front() / 2);
  for (size_t i = 1; i < r.cumulative_hit_ratio.size(); ++i) {
    EXPECT_LE(r.cumulative_hit_ratio[i], r.cumulative_hit_ratio[i - 1] + 1e-9);
  }
  // The server never stops re-encoding frames: CPU load does not fall.
  ASSERT_GE(r.cpu_utilization.size(), 50u);
  EXPECT_GT(r.cpu_utilization[30], 0.05);
  EXPECT_GT(r.cpu_utilization[55], 0.05);
}

TEST(RttProbeTest, SaturationExplodesLatencyAndJitter) {
  auto light = RunRttProbe(2.0, Duration::Seconds(30));
  auto heavy = RunRttProbe(9.6, Duration::Seconds(30));
  EXPECT_LT(light.mean_rtt_ms, 5.0);
  EXPECT_GT(heavy.mean_rtt_ms, 20.0);
  EXPECT_GT(heavy.rtt_variance, light.rtt_variance * 100);
}

TEST(SessionSetupTest, PaperConstants) {
  EXPECT_EQ(SessionSetupBytes(ProtocolKind::kRdp), Bytes::Of(45328));
  EXPECT_EQ(SessionSetupBytes(ProtocolKind::kX), Bytes::Of(16312));
  EXPECT_GT(SessionSetupBytes(ProtocolKind::kLbx), Bytes::Of(16312));
}

}  // namespace
}  // namespace tcs
