// ReliableChannel: ARQ over a lossy Link. Healthy links add no recovery delay; lossy
// links recover every frame via RTO-driven retransmission with strict in-order release,
// and the counters reconcile exactly against the link's frame ledger.

#include "src/net/reliable.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "src/fault/fault_injector.h"
#include "src/net/link.h"

namespace tcs {
namespace {

LinkConfig TenMbps() {
  LinkConfig cfg;
  cfg.rate = BitsPerSecond::Mbps(10);
  cfg.propagation = Duration::Micros(50);
  return cfg;
}

TEST(ReliableChannelTest, HealthyLinkDeliversWithLinkTiming) {
  Simulator sim;
  Link link(sim, TenMbps());
  ReliableChannel channel(sim, link);
  TimePoint delivered;
  channel.Send(Bytes::Of(1500), [&] { delivered = sim.Now(); });
  sim.Run();
  // No loss: delivery at the raw link time (1200 us serialization + 50 us propagation);
  // the ACK path adds nothing to the data path.
  EXPECT_EQ(delivered, TimePoint::FromMicros(1250));
  EXPECT_EQ(channel.frames_sent(), 1);
  EXPECT_EQ(channel.frames_delivered(), 1);
  EXPECT_EQ(channel.retransmissions(), 0);
  EXPECT_EQ(channel.acks_received(), 1);
}

TEST(ReliableChannelTest, HealthyLinkReleasesInOrder) {
  Simulator sim;
  Link link(sim, TenMbps());
  ReliableChannel channel(sim, link);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    channel.Send(Bytes::Of(500), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ReliableChannelTest, RecoversEveryFrameUnderLoss) {
  Simulator sim;
  Link link(sim, TenMbps());
  LinkFaultPlan plan;
  plan.loss_rate = 0.3;
  LinkFaultInjector injector(plan, 99);
  link.SetFaultInjector(&injector);
  ReliableChannel channel(sim, link);

  std::vector<int> order;
  constexpr int kFrames = 200;
  for (int i = 0; i < kFrames; ++i) {
    channel.Send(Bytes::Of(1000), [&order, i] { order.push_back(i); });
  }
  sim.Run();

  // Every frame eventually lands, strictly in order.
  ASSERT_EQ(static_cast<int>(order.size()), kFrames);
  for (int i = 0; i < kFrames; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
  EXPECT_GT(channel.retransmissions(), 0);
  EXPECT_EQ(channel.frames_abandoned(), 0);
}

TEST(ReliableChannelTest, CountersReconcileAgainstLinkLedger) {
  Simulator sim;
  Link link(sim, TenMbps());
  LinkFaultPlan plan;
  plan.loss_rate = 0.25;
  LinkFaultInjector injector(plan, 7);
  link.SetFaultInjector(&injector);
  ReliableChannel channel(sim, link);

  for (int i = 0; i < 300; ++i) {
    channel.Send(Bytes::Of(800));
  }
  sim.Run();

  // The two reconciliation identities from the issue:
  //   link attempts == originals + retransmissions
  //   link attempts == delivered + lost
  EXPECT_EQ(link.frames_sent(), channel.frames_sent() + channel.retransmissions());
  EXPECT_EQ(link.frames_sent(), link.frames_delivered() + link.frames_lost());
  EXPECT_EQ(channel.frames_delivered(), 300);
}

TEST(ReliableChannelTest, RecoversAcrossScriptedOutage) {
  Simulator sim;
  Link link(sim, TenMbps());
  LinkFaultPlan plan;
  // 100 ms blackout starting at t=10ms: frames sent into it are swallowed and must be
  // retransmitted after it lifts.
  plan.scripted_outages = {
      {TimePoint::FromMicros(10'000), TimePoint::FromMicros(110'000)}};
  LinkFaultInjector injector(plan, 1);
  link.SetFaultInjector(&injector);
  ReliableChannel channel(sim, link);

  int delivered = 0;
  TimePoint last;
  // One frame before the outage, several during it.
  channel.Send(Bytes::Of(1000), [&] { ++delivered; last = sim.Now(); });
  sim.RunUntil(TimePoint::FromMicros(20'000));
  for (int i = 0; i < 5; ++i) {
    channel.Send(Bytes::Of(1000), [&] { ++delivered; last = sim.Now(); });
  }
  sim.Run();

  EXPECT_EQ(delivered, 6);
  EXPECT_GT(channel.retransmissions(), 0);
  // Nothing can complete before the outage ends.
  EXPECT_GT(last, TimePoint::FromMicros(110'000));
}

TEST(ReliableChannelTest, SrttSamplesOnCleanExchanges) {
  Simulator sim;
  Link link(sim, TenMbps());
  ReliableChannel channel(sim, link);
  EXPECT_EQ(channel.srtt(), Duration::Zero());
  for (int i = 0; i < 10; ++i) {
    channel.Send(Bytes::Of(1000));
  }
  sim.Run();
  // 1000 B data (800 us) + 50 us + 64 B ack (51.2 us) + 50 us ~= 951 us for an unqueued
  // exchange; with queueing the smoothed estimate stays above the floor.
  EXPECT_GT(channel.srtt(), Duration::Micros(900));
}

TEST(ReliableChannelTest, DeterministicAcrossReruns) {
  auto run = [] {
    Simulator sim;
    Link link(sim, TenMbps());
    LinkFaultPlan plan;
    plan.loss_rate = 0.2;
    LinkFaultInjector injector(plan, 1234);
    link.SetFaultInjector(&injector);
    ReliableChannel channel(sim, link);
    for (int i = 0; i < 100; ++i) {
      channel.Send(Bytes::Of(1200));
    }
    sim.Run();
    return std::tuple(channel.retransmissions(), link.frames_lost(),
                      channel.srtt().ToMicros(), sim.events_executed());
  };
  EXPECT_EQ(run(), run());
}

TEST(ReliableChannelTest, AbandonsAfterMaxAttemptsOnDeadLink) {
  Simulator sim;
  Link link(sim, TenMbps());
  LinkFaultPlan plan;
  plan.loss_rate = 0.999999;  // effectively dead, but Validate() would accept it
  LinkFaultInjector injector(plan, 5);
  link.SetFaultInjector(&injector);
  ReliableChannelConfig cfg;
  cfg.max_attempts = 4;
  ReliableChannel channel(sim, link, cfg);

  bool fired = false;
  channel.Send(Bytes::Of(1000), [&] { fired = true; });
  sim.Run();
  EXPECT_EQ(channel.frames_abandoned(), 1);
  EXPECT_FALSE(fired);  // abandoned frames never pretend to deliver
}

}  // namespace
}  // namespace tcs
