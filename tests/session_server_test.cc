#include "src/session/server.h"

#include <gtest/gtest.h>

#include "src/cpu/idle_profiler.h"
#include "src/metrics/latency.h"
#include "src/session/os_profile.h"
#include "src/workload/typist.h"

namespace tcs {
namespace {

TEST(OsProfileTest, SchedulerFactoryMatchesKind) {
  EXPECT_EQ(OsProfile::Tse().MakeScheduler()->name(), "nt");
  EXPECT_EQ(OsProfile::LinuxX().MakeScheduler()->name(), "linux");
  EXPECT_EQ(OsProfile::LinuxSvr4().MakeScheduler()->name(), "svr4-ia");
}

TEST(OsProfileTest, LoginTablesMatchPaper) {
  OsProfile tse = OsProfile::Tse();
  Bytes tse_total = Bytes::Zero();
  for (const auto& p : tse.login_processes) {
    tse_total += p.private_memory;
  }
  EXPECT_EQ(tse_total, Bytes::KiB(3244));
  Bytes tse_light = Bytes::Zero();
  for (const auto& p : tse.light_login_processes) {
    tse_light += p.private_memory;
  }
  EXPECT_EQ(tse_light, Bytes::KiB(2100));

  OsProfile lin = OsProfile::LinuxX();
  Bytes lin_total = Bytes::Zero();
  for (const auto& p : lin.login_processes) {
    lin_total += p.private_memory;
  }
  EXPECT_EQ(lin_total, Bytes::KiB(752));
}

TEST(OsProfileTest, TseHasLongDaemonEventsLinuxDoesNot) {
  OsProfile tse = OsProfile::Tse();
  Duration tse_max = Duration::Zero();
  for (const auto& d : tse.idle_daemons) {
    tse_max = std::max(tse_max, d.episode_cpu);
  }
  EXPECT_EQ(tse_max, Duration::Millis(400));
  OsProfile lin = OsProfile::LinuxX();
  Duration lin_max = Duration::Zero();
  for (const auto& d : lin.idle_daemons) {
    lin_max = std::max(lin_max, d.episode_cpu);
  }
  EXPECT_LE(lin_max, Duration::Millis(5));
}

TEST(ServerTest, LoginAccountsSessionMemory) {
  Simulator sim;
  Server server(sim, OsProfile::Tse());
  size_t before = server.pager().frames_used();
  Session& s = server.Login();
  EXPECT_EQ(s.private_memory(), Bytes::KiB(3244));
  EXPECT_EQ(s.shared_memory(), Bytes::KiB(2676));
  // First login: 3244 KiB of private process pages + the 1000-page working set + the
  // one server-wide copy of the 2676 KiB of shared text (669 pages).
  size_t after = server.pager().frames_used();
  EXPECT_EQ(after - before, 811u + 1000u + 669u);
  // A second full login maps the same text: only private memory + working set grow —
  // §5.1.1's sublinear per-user bill.
  Session& second = server.Login();
  EXPECT_EQ(second.shared_memory(), Bytes::KiB(2676));
  EXPECT_EQ(server.pager().frames_used() - after, 811u + 1000u);
  Session& light = server.Login(true);
  EXPECT_EQ(light.private_memory(), Bytes::KiB(2100));
}

TEST(ServerTest, LoginSendsSessionSetupBytes) {
  Simulator sim;
  Server server(sim, OsProfile::Tse());
  EXPECT_EQ(server.link().bytes_carried(), Bytes::Zero());
  server.Login();
  // 45,328 bytes of setup plus per-packet wire headers.
  EXPECT_GT(server.link().bytes_carried(), Bytes::Of(45328));
}

TEST(ServerTest, KeystrokeEmitsDisplayUpdate) {
  Simulator sim;
  Server server(sim, OsProfile::LinuxX());
  Session& s = server.Login();
  sim.RunFor(Duration::Seconds(1));  // let the session-setup bytes drain off the link
  TimePoint updated = TimePoint::Infinite();
  s.set_on_display_update([&](TimePoint t) { updated = t; });
  TimePoint pressed = sim.Now();
  server.Keystroke(s);
  sim.RunFor(Duration::Seconds(1));
  // Input transit (~0.15 ms) + vim's 2.5 ms of work: update within a few ms.
  EXPECT_LT(updated - pressed, Duration::Millis(10));
  EXPECT_GT(server.tap().messages(Channel::kInput), 0);
  EXPECT_GT(server.tap().messages(Channel::kDisplay), 0);
}

// Keystrokes arriving faster than the pipeline drains coalesce into batched updates
// rather than queueing unboundedly (editors drain their input queues in one read).
TEST(ServerTest, RepeatCoalescesUnderLoad) {
  Simulator sim;
  Server server(sim, OsProfile::Tse());
  Session& s = server.Login();
  server.StartSinks(10);  // pipeline latency far above the 50 ms repeat period
  int updates = 0;
  s.set_on_display_update([&](TimePoint) { ++updates; });
  Typist typist(sim, [&] { server.Keystroke(s); });
  typist.Start(Duration::Seconds(1));
  sim.RunUntil(TimePoint::Zero() + Duration::Seconds(11));
  typist.Stop();
  // 200 keystrokes in 10 s, but far fewer (batched) updates.
  EXPECT_GT(updates, 2);
  EXPECT_LT(updates, 100);
}

TEST(ServerTest, DaemonsGenerateIdleActivity) {
  Simulator sim;
  Server server(sim, OsProfile::Tse());
  IdleLoopProfiler profiler(server.cpu());
  server.StartDaemons();
  sim.RunUntil(TimePoint::Zero() + Duration::Seconds(30));
  profiler.Flush();
  double busy_frac = profiler.TotalBusy().ToSecondsF() / 30.0;
  EXPECT_GT(busy_frac, 0.04);
  EXPECT_LT(busy_frac, 0.20);
}

TEST(ServerTest, TseIdleLoadExceedsLinux) {
  auto measure = [](OsProfile profile) {
    Simulator sim;
    Server server(sim, std::move(profile));
    IdleLoopProfiler profiler(server.cpu());
    server.StartDaemons();
    sim.RunUntil(TimePoint::Zero() + Duration::Seconds(60));
    profiler.Flush();
    return profiler.TotalBusy();
  };
  Duration tse = measure(OsProfile::Tse());
  Duration nt = measure(OsProfile::NtWorkstation());
  Duration lin = measure(OsProfile::LinuxX());
  EXPECT_GT(tse, nt);
  EXPECT_GT(nt, lin);
  // "TSE generates about three times the idle-state load that NT Workstation does, and
  // about seven times that of Linux."
  EXPECT_NEAR(tse / nt, 3.0, 1.2);
  EXPECT_NEAR(tse / lin, 7.0, 2.5);
}

}  // namespace
}  // namespace tcs
