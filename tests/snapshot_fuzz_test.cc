// Hostile-blob fuzzing for the snapshot layer, meant to run under ASan/UBSan.
//
// Every mutation of a valid snapshot — truncation at any length, any single bit flip,
// version skew, or arbitrary garbage — must surface as a thrown SnapshotError (or its
// ConfigError base), never as a crash, hang, over-read, or silent partial restore. Bit
// flips and truncations die at the reader's up-front CRC check; to reach the deeper
// restore paths the test also re-seals mutated blobs with a freshly computed CRC so the
// section/manifest/topology validation has to reject them itself.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/checkpoint.h"
#include "src/session/os_profile.h"
#include "src/sim/random.h"
#include "src/sim/snapshot.h"

namespace tcs {
namespace {

// Local CRC32 (IEEE 802.3, reflected) so mutated blobs can be re-sealed and the
// deeper validation layers exercised. Matches the snapshot trailer's polynomial.
uint32_t Crc32(const uint8_t* data, size_t len) {
  static uint32_t table[256];
  static bool init = [] {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return true;
  }();
  (void)init;
  uint32_t crc = 0xffffffffu;
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ data[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

void Reseal(std::vector<uint8_t>& blob) {
  uint32_t crc = Crc32(blob.data(), blob.size() - 4);
  blob[blob.size() - 4] = static_cast<uint8_t>(crc);
  blob[blob.size() - 3] = static_cast<uint8_t>(crc >> 8);
  blob[blob.size() - 2] = static_cast<uint8_t>(crc >> 16);
  blob[blob.size() - 1] = static_cast<uint8_t>(crc >> 24);
}

ConsolidationOptions SmallRun() {
  ConsolidationOptions o;
  o.users = 2;
  o.duration = Duration::Seconds(2);
  o.seed = 9;
  o.ram = Bytes::MiB(48);
  o.burst_cpu = Duration::Millis(100);
  o.burst_period = Duration::Seconds(2);
  return o;
}

std::vector<uint8_t> MakeBlob() {
  ConsolidationRun run(OsProfile::Tse(), SmallRun());
  run.RunUntil(TimePoint::Zero() + Duration::Millis(1500));
  return run.Snapshot();
}

const std::vector<uint8_t>& Blob() {
  static const std::vector<uint8_t> blob = MakeBlob();
  return blob;
}

// Restore must throw SnapshotError (or at worst its ConfigError base); anything else —
// another exception type, or no throw at all — is a verdict failure, and memory errors
// are caught by the sanitizers this test runs under in CI.
void ExpectRejected(const std::vector<uint8_t>& blob, const std::string& what) {
  try {
    ConsolidationRun target(OsProfile::Tse(), SmallRun());
    target.Restore(blob);
    ADD_FAILURE() << what << ": restore accepted a corrupt blob";
  } catch (const ConfigError&) {
    // Expected: SnapshotError derives from ConfigError.
  }
}

TEST(SnapshotFuzz, SanityValidBlobRestores) {
  ConsolidationRun target(OsProfile::Tse(), SmallRun());
  target.Restore(Blob());  // must not throw
}

TEST(SnapshotFuzz, EveryTruncationLengthIsRejected) {
  const std::vector<uint8_t>& blob = Blob();
  size_t step = std::max<size_t>(1, blob.size() / 211);
  for (size_t len = 0; len < blob.size(); len += step) {
    std::vector<uint8_t> cut(blob.begin(), blob.begin() + static_cast<ptrdiff_t>(len));
    ExpectRejected(cut, "truncated to " + std::to_string(len));
  }
  // The off-by-one neighborhood of the trailer, exhaustively.
  for (size_t drop = 1; drop <= 8 && drop < blob.size(); ++drop) {
    std::vector<uint8_t> cut(blob.begin(), blob.end() - static_cast<ptrdiff_t>(drop));
    ExpectRejected(cut, "trailer minus " + std::to_string(drop));
  }
}

TEST(SnapshotFuzz, EveryBitFlipIsRejected) {
  const std::vector<uint8_t>& blob = Blob();
  // ~400 sampled positions x one pseudorandom bit each; the CRC trailer itself is
  // included (a flipped checksum must also fail).
  Rng rng(0xF112);
  size_t step = std::max<size_t>(1, blob.size() / 397);
  for (size_t at = 0; at < blob.size(); at += step) {
    std::vector<uint8_t> mut = blob;
    mut[at] ^= static_cast<uint8_t>(1u << rng.NextInt(0, 7));
    ExpectRejected(mut, "bit flip at " + std::to_string(at));
  }
}

TEST(SnapshotFuzz, VersionSkewIsRejectedEvenWithValidCrc) {
  std::vector<uint8_t> mut = Blob();
  // Header layout: fixed32 magic, then the format version as a LEB128 varint at
  // offset 4 (version 1 is the single byte 0x01).
  ASSERT_EQ(mut[4], 0x01);
  mut[4] = 0x02;
  Reseal(mut);
  ExpectRejected(mut, "version 2 blob");

  mut[4] = 0x81;  // multi-byte varint: version 128+
  Reseal(mut);
  ExpectRejected(mut, "varint-overflowing version");
}

TEST(SnapshotFuzz, ResealedPayloadCorruptionIsRejected) {
  const std::vector<uint8_t>& blob = Blob();
  Rng rng(0xC0FFEE);
  // Byte-level corruption past the CRC: section tags, lengths, counts, and values get
  // hit; the section framing and the restore-time manifest/topology checks must catch
  // what the checksum no longer can.
  size_t step = std::max<size_t>(1, blob.size() / 211);
  for (size_t at = 5; at + 4 < blob.size(); at += step) {
    std::vector<uint8_t> mut = blob;
    mut[at] ^= static_cast<uint8_t>(1u + rng.NextInt(0, 254));
    Reseal(mut);
    try {
      ConsolidationRun target(OsProfile::Tse(), SmallRun());
      target.Restore(mut);
      // A mutation that lands in serialized *state* (an RNG word, a counter) can
      // legitimately restore: state values are data, not structure. Structural damage
      // must throw, and sanitizers police memory safety either way.
    } catch (const ConfigError&) {
      // Expected for structural damage.
    }
  }
}

TEST(SnapshotFuzz, GarbageBlobsAreRejected) {
  Rng rng(0xBAD5EED);
  for (size_t len : {0u, 1u, 4u, 8u, 9u, 64u, 4096u}) {
    std::vector<uint8_t> junk(len);
    for (uint8_t& b : junk) {
      b = static_cast<uint8_t>(rng.NextInt(0, 255));
    }
    ExpectRejected(junk, "garbage of length " + std::to_string(len));
  }
  // Correct magic + version + valid CRC over an empty body: structurally sealed but
  // missing every section.
  SnapshotWriter w;
  std::vector<uint8_t> empty = w.Finish();
  ExpectRejected(empty, "sealed empty body");
}

TEST(SnapshotFuzz, WrongShapeBlobIsRejected) {
  std::vector<uint8_t> blob = Blob();  // 2 users, bursts on
  ConsolidationOptions other = SmallRun();
  other.users = 3;
  ConsolidationRun target(OsProfile::Tse(), other);
  EXPECT_THROW(target.Restore(blob), SnapshotError);
}

}  // namespace
}  // namespace tcs
