#include "src/sim/random.h"

#include <gtest/gtest.h>

#include <vector>

namespace tcs {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, ForkIsIndependentOfParentContinuation) {
  Rng parent(7);
  Rng child = parent.Fork();
  // The child stream must not simply replay the parent stream.
  Rng parent2(7);
  (void)parent2.Fork();
  uint64_t p = parent.NextU64();
  uint64_t c = child.NextU64();
  EXPECT_NE(p, c);
  // And forking is itself deterministic.
  Rng parent3(7);
  Rng child3 = parent3.Fork();
  EXPECT_EQ(child3.NextU64(), c);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.NextBelow(1), 0u);
  }
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(4);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NextBoolEdgeProbabilities) {
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(RngTest, NextBoolMatchesProbability) {
  Rng rng(8);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    hits += rng.NextBool(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ExponentialMeanConverges) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextExponential(5.0);
    ASSERT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 5.0, 0.2);
}

TEST(RngTest, NormalMeanAndSpread) {
  Rng rng(10);
  double sum = 0.0;
  double sumsq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextNormal(10.0, 2.0);
    sum += v;
    sumsq += v * v;
  }
  double mean = sum / n;
  double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, FillBytesRedundancyControlsRepeats) {
  Rng rng(11);
  std::vector<uint8_t> noisy(4096);
  std::vector<uint8_t> repetitive(4096);
  rng.FillBytes(noisy.data(), noisy.size(), 0.0);
  rng.FillBytes(repetitive.data(), repetitive.size(), 0.95);
  auto count_repeats = [](const std::vector<uint8_t>& v) {
    int repeats = 0;
    for (size_t i = 1; i < v.size(); ++i) {
      repeats += (v[i] == v[i - 1]) ? 1 : 0;
    }
    return repeats;
  };
  EXPECT_LT(count_repeats(noisy), 100);
  EXPECT_GT(count_repeats(repetitive), 3000);
}

}  // namespace
}  // namespace tcs
