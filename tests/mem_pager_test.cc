#include "src/mem/pager.h"

#include <gtest/gtest.h>

namespace tcs {
namespace {

DiskConfig FastDeterministicDisk() {
  DiskConfig cfg;
  cfg.positioning_mean = Duration::Millis(4);
  cfg.positioning_stddev = Duration::Zero();
  cfg.positioning_min = Duration::Millis(1);
  return cfg;
}

struct PagerFixture {
  explicit PagerFixture(PagerConfig cfg = {})
      : disk(sim, Rng(1), FastDeterministicDisk()), pager(sim, disk, cfg) {}

  Simulator sim;
  Disk disk;
  Pager pager;
};

PagerConfig SmallMemory(size_t frames) {
  PagerConfig cfg;
  cfg.total_frames = frames;
  return cfg;
}

TEST(PagerTest, FirstTouchZeroFillsWithoutIo) {
  PagerFixture f(SmallMemory(16));
  AddressSpace* as = f.pager.CreateAddressSpace("p", false);
  int completions = 0;
  f.pager.Access(*as, 0, false, [&] { ++completions; });
  f.sim.Run();
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(f.pager.faults(), 1);
  EXPECT_TRUE(as->IsResident(0));
  EXPECT_EQ(f.disk.reads(), 0);                 // anonymous zero-fill: no disk
  EXPECT_EQ(f.sim.Now(), TimePoint::Zero());    // and no latency

  f.pager.Access(*as, 0, false, [&] { ++completions; });
  f.sim.Run();
  EXPECT_EQ(completions, 2);
  EXPECT_EQ(f.pager.hits(), 1);
}

TEST(PagerTest, SwappedOutPagePaysDiskOnReaccess) {
  PagerFixture f(SmallMemory(16));
  AddressSpace* as = f.pager.CreateAddressSpace("p", false);
  f.pager.Prefault(*as, 0, 1);
  f.pager.MarkSwappedOut(*as, 0, 1);
  EXPECT_FALSE(as->IsResident(0));
  EXPECT_TRUE(as->WasEvicted(0));
  bool done = false;
  f.pager.Access(*as, 0, false, [&] { done = true; });
  f.sim.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(f.disk.reads(), 1);
  EXPECT_GT(f.sim.Now(), TimePoint::Zero());  // paid disk latency
  EXPECT_TRUE(as->IsResident(0));
}

TEST(PagerTest, EvictedPageNeedsDiskToComeBack) {
  PagerFixture f(SmallMemory(2));
  AddressSpace* as = f.pager.CreateAddressSpace("p", false);
  f.pager.Access(*as, 0, true, nullptr);
  f.pager.Access(*as, 1, true, nullptr);
  f.pager.Access(*as, 2, true, nullptr);  // evicts page 0 (all zero-fill so far)
  f.sim.Run();
  EXPECT_TRUE(as->WasEvicted(0));
  int64_t reads_before = f.disk.reads();
  f.pager.Access(*as, 0, false, nullptr);  // swap page 0 back in
  f.sim.Run();
  EXPECT_EQ(f.disk.reads(), reads_before + 1);
}

TEST(PagerTest, EvictsLeastRecentlyUsed) {
  PagerFixture f(SmallMemory(3));
  AddressSpace* as = f.pager.CreateAddressSpace("p", false);
  f.pager.Prefault(*as, 0, 3);  // pages 0,1,2 resident; LRU order 0,1,2
  f.pager.Access(*as, 0, false, nullptr);  // touch 0 -> LRU order 1,2,0
  f.pager.Access(*as, 3, false, nullptr);  // fault -> evicts 1
  f.sim.Run();
  EXPECT_TRUE(as->IsResident(0));
  EXPECT_FALSE(as->IsResident(1));
  EXPECT_TRUE(as->IsResident(2));
  EXPECT_TRUE(as->IsResident(3));
  EXPECT_EQ(f.pager.evictions(), 1);
}

TEST(PagerTest, DirtyEvictionTriggersWriteback) {
  PagerFixture f(SmallMemory(2));
  AddressSpace* as = f.pager.CreateAddressSpace("p", false);
  f.pager.Access(*as, 0, /*write=*/true, nullptr);
  f.pager.Access(*as, 1, /*write=*/false, nullptr);
  f.pager.Access(*as, 2, /*write=*/false, nullptr);  // evicts dirty page 0
  f.sim.Run();
  EXPECT_EQ(f.pager.dirty_writebacks(), 1);
  EXPECT_EQ(f.disk.writes(), 1);

  // Evicting the clean page 1 must not add another writeback.
  f.pager.Access(*as, 3, false, nullptr);
  f.sim.Run();
  EXPECT_EQ(f.pager.dirty_writebacks(), 1);
}

TEST(PagerTest, StreamingHogEvictsIdleProcess) {
  // The §5.2 pathology: 100-frame memory, a 40-page editor, and a hog whose demand
  // exceeds free memory. After the hog streams through, the editor has been paged out.
  PagerFixture f(SmallMemory(100));
  AddressSpace* editor = f.pager.CreateAddressSpace("editor", true);
  AddressSpace* hog = f.pager.CreateAddressSpace("hog", false);
  f.pager.Prefault(*editor, 0, 40);
  EXPECT_EQ(editor->resident_pages(), 40u);
  for (uint64_t vpn = 0; vpn < 120; ++vpn) {
    f.pager.Access(*hog, vpn, /*write=*/true, nullptr);
  }
  f.sim.Run();
  EXPECT_EQ(editor->resident_pages(), 0u);
  EXPECT_EQ(f.pager.frames_used(), 100u);
}

TEST(PagerTest, InteractiveProtectKeepsEditorResident) {
  PagerConfig cfg = SmallMemory(100);
  cfg.policy = EvictionPolicy::kInteractiveProtect;
  PagerFixture f(cfg);
  AddressSpace* editor = f.pager.CreateAddressSpace("editor", true);
  AddressSpace* hog = f.pager.CreateAddressSpace("hog", false);
  f.pager.Prefault(*editor, 0, 40);
  for (uint64_t vpn = 0; vpn < 200; ++vpn) {
    f.pager.Access(*hog, vpn, /*write=*/true, nullptr);
  }
  f.sim.Run();
  // The hog recycled its own pages; the editor survived untouched.
  EXPECT_EQ(editor->resident_pages(), 40u);
  EXPECT_GT(f.pager.protected_skips(), 0);
}

TEST(PagerTest, InteractiveProtectStillAllowsInteractiveGrowth) {
  PagerConfig cfg = SmallMemory(10);
  cfg.policy = EvictionPolicy::kInteractiveProtect;
  PagerFixture f(cfg);
  AddressSpace* a = f.pager.CreateAddressSpace("a", true);
  AddressSpace* b = f.pager.CreateAddressSpace("b", true);
  f.pager.Prefault(*a, 0, 10);
  // An interactive fault may evict interactive pages (normal LRU among peers).
  f.pager.Access(*b, 0, false, nullptr);
  f.sim.Run();
  EXPECT_EQ(a->resident_pages(), 9u);
  EXPECT_EQ(b->resident_pages(), 1u);
}

TEST(PagerTest, ThrottleDelaysNonInteractiveFaultsWhenSaturated) {
  PagerConfig cfg = SmallMemory(4);
  cfg.policy = EvictionPolicy::kInteractiveProtect;
  cfg.throttle_delay = Duration::Millis(50);
  PagerFixture f(cfg);
  AddressSpace* hog = f.pager.CreateAddressSpace("hog", false);
  f.pager.Prefault(*hog, 100, 4);  // memory now saturated
  TimePoint done;
  f.pager.Access(*hog, 0, true, [&] { done = f.sim.Now(); });
  f.sim.Run();
  // 50 ms throttle + ~4.82 ms disk read.
  EXPECT_GE(done, TimePoint::FromMicros(50000));
}

TEST(PagerTest, NoThrottleWhileMemoryFree) {
  PagerConfig cfg = SmallMemory(4);
  cfg.policy = EvictionPolicy::kInteractiveProtect;
  cfg.throttle_delay = Duration::Millis(50);
  PagerFixture f(cfg);
  AddressSpace* hog = f.pager.CreateAddressSpace("hog", false);
  TimePoint done;
  f.pager.Access(*hog, 0, true, [&] { done = f.sim.Now(); });
  f.sim.Run();
  EXPECT_LT(done, TimePoint::FromMicros(10000));
}

TEST(PagerTest, AccessRangeClustersContiguousSwapIns) {
  PagerConfig cfg = SmallMemory(64);
  cfg.cluster_pages = 8;
  PagerFixture f(cfg);
  AddressSpace* as = f.pager.CreateAddressSpace("p", false);
  f.pager.MarkSwappedOut(*as, 0, 32);
  bool done = false;
  f.pager.AccessRange(*as, 0, 32, false, [&] { done = true; });
  f.sim.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(f.pager.faults(), 32);
  EXPECT_EQ(f.disk.reads(), 4);  // 32 pages in 8-page clusters
  EXPECT_EQ(f.disk.pages_read(), 32);
}

TEST(PagerTest, AccessRangeSkipsResidentPages) {
  PagerConfig cfg = SmallMemory(64);
  cfg.cluster_pages = 8;
  PagerFixture f(cfg);
  AddressSpace* as = f.pager.CreateAddressSpace("p", false);
  f.pager.MarkSwappedOut(*as, 0, 24);
  f.pager.Prefault(*as, 8, 8);  // middle brought back
  bool done = false;
  f.pager.AccessRange(*as, 0, 24, false, [&] { done = true; });
  f.sim.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(f.disk.reads(), 2);  // two swapped-out runs of 8
}

TEST(PagerTest, AccessRangeAllResidentCompletesWithoutIo) {
  PagerFixture f(SmallMemory(64));
  AddressSpace* as = f.pager.CreateAddressSpace("p", false);
  f.pager.Prefault(*as, 0, 16);
  bool done = false;
  f.pager.AccessRange(*as, 0, 16, false, [&] { done = true; });
  f.sim.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(f.disk.reads(), 0);
  EXPECT_EQ(f.sim.Now(), TimePoint::Zero());
}

TEST(PagerTest, SingleClusterSwapInsAreSequentialIos) {
  PagerConfig cfg = SmallMemory(64);
  cfg.cluster_pages = 1;  // Linux 2.0-style single-page swap-in
  PagerFixture f(cfg);
  AddressSpace* as = f.pager.CreateAddressSpace("p", false);
  f.pager.MarkSwappedOut(*as, 0, 10);
  bool done = false;
  f.pager.AccessRange(*as, 0, 10, false, [&] { done = true; });
  f.sim.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(f.disk.reads(), 10);
}

TEST(PagerTest, MissingInCountsCorrectly) {
  PagerFixture f(SmallMemory(64));
  AddressSpace* as = f.pager.CreateAddressSpace("p", false);
  f.pager.Prefault(*as, 0, 5);
  EXPECT_EQ(as->MissingIn(0, 10), 5u);
  EXPECT_EQ(as->MissingIn(0, 5), 0u);
  EXPECT_EQ(as->MissingIn(5, 5), 5u);
}

TEST(PagerTest, FramesAccounting) {
  PagerFixture f(SmallMemory(8));
  AddressSpace* as = f.pager.CreateAddressSpace("p", false);
  EXPECT_EQ(f.pager.frames_free(), 8u);
  f.pager.Prefault(*as, 0, 3);
  EXPECT_EQ(f.pager.frames_used(), 3u);
  EXPECT_EQ(f.pager.frames_free(), 5u);
  EXPECT_FALSE(f.pager.IsSaturated());
  f.pager.Prefault(*as, 3, 5);
  EXPECT_TRUE(f.pager.IsSaturated());
}

}  // namespace
}  // namespace tcs
