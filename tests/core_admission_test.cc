// The consolidation engine and admission-control capacity search.
//
// Covers the tentpole claims directly: the N=1 consolidation run is byte-identical to
// the single-session typing experiment (differential test), capacity answers are
// deterministic across reruns, utilization-based sizing demonstrably over-admits
// against the latency criterion on TSE, and the shared pager makes resident growth
// sublinear in the number of admitted users.

#include "src/core/admission.h"

#include <gtest/gtest.h>

#include <regex>
#include <string>

#include "src/core/experiments.h"
#include "src/core/report.h"
#include "src/session/os_profile.h"
#include "src/util/config_error.h"

namespace tcs {
namespace {

// Report text with the one nondeterministic field (wall_ms) neutralized.
std::string StripWall(const std::string& json) {
  static const std::regex kWall("\"wall_ms\":[-+0-9.eE]+");
  return std::regex_replace(json, kWall, "\"wall_ms\":0");
}

ConsolidationOptions TypingShape(int sinks, Duration duration, uint64_t seed) {
  ConsolidationOptions opt;
  opt.users = 1;
  opt.sinks = sinks;
  opt.duration = duration;
  opt.seed = seed;
  return opt;  // defaults: 50 ms cadence, 1 s start delay, no bursts
}

// --- Differential: one admitted user through the full consolidation stack (session
// flow, per-session pipeline, shared text) reproduces the single-session typing
// experiment sample for sample.
TEST(AdmissionDifferentialTest, SingleUserConsolidationMatchesTypingByteForByte) {
  OsProfile profile = OsProfile::Tse();
  TypingUnderLoadResult typing =
      RunTypingUnderLoad(profile, 3, Duration::Seconds(10), 7);
  ConsolidationResult consolidated =
      RunConsolidation(profile, TypingShape(3, Duration::Seconds(10), 7));
  ASSERT_EQ(consolidated.per_user.size(), 1u);
  const UserStallStats& user = consolidated.per_user.front();
  EXPECT_EQ(user.updates, typing.updates);
  EXPECT_EQ(user.avg_stall_ms, typing.avg_stall_ms);
  EXPECT_EQ(user.max_stall_ms, typing.max_stall_ms);
  EXPECT_EQ(user.jitter_ms, typing.jitter_ms);
  ASSERT_FALSE(typing.stall_samples_us.empty());
  EXPECT_EQ(user.stall_samples_us, typing.stall_samples_us);
  EXPECT_EQ(consolidated.run.events_executed, typing.run.events_executed);
}

TEST(AdmissionDifferentialTest, CapacityProbeAtOneUserMatchesTypingByteForByte) {
  OsProfile profile = OsProfile::LinuxX();
  CapacityOptions options;
  options.max_users = 1;
  options.behavior = TypingShape(2, Duration::Seconds(10), 9);
  CapacityResult capacity = RunServerCapacity(profile, options);
  TypingUnderLoadResult typing =
      RunTypingUnderLoad(profile, 2, Duration::Seconds(10), 9);
  ASSERT_EQ(capacity.probes.size(), 1u);
  ASSERT_EQ(capacity.probes[0].users, 1);
  ASSERT_FALSE(typing.stall_samples_us.empty());
  EXPECT_EQ(capacity.probes[0].per_user[0].stall_samples_us, typing.stall_samples_us);
  EXPECT_EQ(capacity.probes[0].per_user[0].updates, typing.updates);
}

// --- Determinism: two independent capacity searches produce identical reports except
// for wall-clock time (the report's only nondeterministic field).
TEST(CapacityTest, RerunsAreByteIdenticalModuloWallClock) {
  CapacityOptions options;
  options.max_users = 6;
  options.behavior.duration = Duration::Seconds(8);
  CapacityResult a = RunServerCapacity(OsProfile::Tse(), options);
  CapacityResult b = RunServerCapacity(OsProfile::Tse(), options);
  EXPECT_EQ(StripWall(ToJson(a)), StripWall(ToJson(b)));
}

// --- The headline §3 result: on TSE, the vendor's utilization criterion admits more
// users than the perception-threshold criterion tolerates, and the stall the
// over-admitted configuration inflicts is grossly perceptible.
TEST(CapacityTest, UtilizationSizingOverAdmitsOnTse) {
  CapacityOptions options;
  options.max_users = 8;
  options.behavior.duration = Duration::Seconds(15);
  CapacityResult r = RunServerCapacity(OsProfile::Tse(), options);
  EXPECT_TRUE(r.utilization_over_admits);
  EXPECT_GT(r.utilization_sized_users, r.latency_sized_users);
  EXPECT_GE(r.latency_sized_users, 1);
  const ConsolidationResult* at_util = nullptr;
  for (const ConsolidationResult& probe : r.probes) {
    if (probe.users == r.utilization_sized_users) {
      at_util = &probe;
    }
  }
  ASSERT_NE(at_util, nullptr);
  EXPECT_LT(at_util->cpu_utilization, options.admission.max_utilization);
  EXPECT_GT(at_util->worst_p99_stall_ms,
            options.admission.max_p99_stall.ToMillisF());
}

// --- The latency answer actually honors the perception threshold, and the policy
// predicates agree with the probe data.
TEST(CapacityTest, LatencyAnswerKeepsEveryUserUnderThreshold) {
  CapacityOptions options;
  options.max_users = 8;
  options.behavior.duration = Duration::Seconds(15);
  CapacityResult r = RunServerCapacity(OsProfile::Tse(), options);
  for (const ConsolidationResult& probe : r.probes) {
    bool admitted = Admits(AdmissionPolicy::kLatency, options.admission, probe);
    EXPECT_EQ(admitted,
              probe.worst_p99_stall_ms < options.admission.max_p99_stall.ToMillisF());
    if (probe.users == r.latency_sized_users) {
      EXPECT_TRUE(admitted);
    }
    if (probe.users == r.latency_sized_users + 1) {
      EXPECT_FALSE(admitted);
    }
  }
}

// --- Consolidation memory story: four users do not cost four times one user's
// resident set, because login text is shared; and the pool never overflows.
TEST(ConsolidationTest, ResidentGrowthIsSublinearInUsers) {
  ConsolidationOptions opt;
  opt.duration = Duration::Seconds(5);
  opt.users = 1;
  ConsolidationResult one = RunConsolidation(OsProfile::Tse(), opt);
  opt.users = 4;
  ConsolidationResult four = RunConsolidation(OsProfile::Tse(), opt);
  EXPECT_LT(four.resident_pages, 4 * one.resident_pages);
  EXPECT_LE(four.resident_pages, four.total_frames);
  EXPECT_GT(four.shared_segments, 0u);
  EXPECT_EQ(four.shared_segments, one.shared_segments);  // per server, not per user
  EXPECT_EQ(four.shared_attaches, 3 * static_cast<int64_t>(four.shared_segments));
}

// --- Per-session flow accounting on the shared link: every session moved bytes, the
// per-session ledgers never exceed the link total, and shares sum to at most 1 (the
// remainder is non-session traffic such as retransmits or background load).
TEST(ConsolidationTest, SessionFlowsAccountForLinkBytes) {
  ConsolidationOptions opt;
  opt.users = 3;
  opt.duration = Duration::Seconds(5);
  ConsolidationResult r = RunConsolidation(OsProfile::Tse(), opt);
  ASSERT_EQ(r.per_user.size(), 3u);
  int64_t session_bytes = 0;
  double share_sum = 0.0;
  for (const UserStallStats& u : r.per_user) {
    EXPECT_GT(u.wire_bytes.count(), 0);
    EXPECT_GT(u.link_share, 0.0);
    session_bytes += u.wire_bytes.count();
    share_sum += u.link_share;
  }
  EXPECT_GT(r.link_utilization, 0.0);
  EXPECT_LE(share_sum, 1.0 + 1e-9);
  EXPECT_GT(session_bytes, 0);
}

// --- More users cannot make the worst user better: the monotonicity that justifies
// the capacity bisection.
TEST(ConsolidationTest, WorstStallIsMonotoneInUsers) {
  ConsolidationOptions opt;
  opt.duration = Duration::Seconds(8);
  opt.burst_cpu = Duration::Millis(300);
  opt.users = 1;
  ConsolidationResult one = RunConsolidation(OsProfile::Tse(), opt);
  opt.users = 6;
  ConsolidationResult six = RunConsolidation(OsProfile::Tse(), opt);
  EXPECT_GE(six.worst_p99_stall_ms, one.worst_p99_stall_ms);
  EXPECT_GT(six.cpu_utilization, one.cpu_utilization);
}

// --- A user the scheduler starves completely is scored as stalled for the whole run,
// not silently dropped (spot-checked here; the invariant lives in RunConsolidation).
TEST(ConsolidationTest, ReportsCarryPerUserBlocks) {
  ConsolidationOptions opt;
  opt.users = 2;
  opt.duration = Duration::Seconds(5);
  ConsolidationResult r = RunConsolidation(OsProfile::LinuxX(), opt);
  std::string json = ToJson(r);
  EXPECT_NE(json.find("\"experiment\":\"consolidation\""), std::string::npos);
  EXPECT_NE(json.find("\"per_user\":["), std::string::npos);
  EXPECT_NE(json.find("\"wire_bytes\":"), std::string::npos);
  for (const UserStallStats& u : r.per_user) {
    EXPECT_GE(u.p99_stall_ms, u.p50_stall_ms);
    EXPECT_GE(u.updates, 2);
  }
}

// --- Spot validation checks (the randomized sweep lives in config_fuzz_test).
TEST(ConsolidationTest, ValidationRejectsNonsense) {
  ConsolidationOptions opt;
  opt.users = 0;
  EXPECT_THROW(Validated(opt), ConfigError);
  opt = ConsolidationOptions{};
  opt.keystroke_period = Duration::Zero();
  EXPECT_THROW(Validated(opt), ConfigError);
  CapacityOptions cap;
  cap.admission.max_utilization = 1.5;
  EXPECT_THROW(Validated(cap), ConfigError);
  cap = CapacityOptions{};
  cap.max_users = -3;
  EXPECT_THROW(Validated(cap), ConfigError);
}

}  // namespace
}  // namespace tcs
