#include "src/cpu/linux_scheduler.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/cpu/cpu.h"
#include "src/sim/simulator.h"

namespace tcs {
namespace {

CpuConfig NoSwitchCost() {
  CpuConfig cfg;
  cfg.context_switch_cost = Duration::Zero();
  return cfg;
}

TEST(LinuxSchedulerTest, TenMillisecondQuantum) {
  LinuxScheduler sched;
  Thread t(1, "t", ThreadClass::kBatch, 0);
  EXPECT_EQ(sched.QuantumFor(t), Duration::Millis(10));
}

TEST(LinuxSchedulerTest, NiceScalesQuantum) {
  LinuxScheduler sched;
  Thread fast(1, "fast", ThreadClass::kBatch, -20);
  Thread slow(2, "slow", ThreadClass::kBatch, 19);
  EXPECT_EQ(sched.QuantumFor(fast), Duration::Millis(18));
  EXPECT_GT(sched.QuantumFor(fast), sched.QuantumFor(slow));
  EXPECT_EQ(sched.QuantumFor(slow), Duration::Micros(2400));
}

TEST(LinuxSchedulerTest, NeverPreemptsOnWake) {
  LinuxScheduler sched;
  Thread running(1, "r", ThreadClass::kBatch, 0);
  Thread gui(2, "g", ThreadClass::kGui, -20);
  EXPECT_FALSE(sched.ShouldPreempt(running, gui));
}

TEST(LinuxSchedulerTest, RoundRobinFifo) {
  LinuxScheduler sched;
  Thread a(1, "a", ThreadClass::kBatch, 0);
  Thread b(2, "b", ThreadClass::kBatch, 0);
  Thread c(3, "c", ThreadClass::kGui, 0);  // class is irrelevant to Linux 2.0
  sched.OnReady(a, WakeReason::kOther);
  sched.OnReady(b, WakeReason::kInputEvent);
  sched.OnReady(c, WakeReason::kInputEvent);
  EXPECT_EQ(sched.PickNext(), &a);
  EXPECT_EQ(sched.PickNext(), &b);
  EXPECT_EQ(sched.PickNext(), &c);
}

// The §4.2.2 mechanism behind Figure 3's Linux curve: a woken editor waits behind the
// entire sink queue, one 10 ms quantum per sink.
TEST(LinuxSchedulerTest, KeystrokeWaitsGrowWithSinkCount) {
  auto run_with_sinks = [](int sinks) {
    Simulator sim;
    Cpu cpu(sim, std::make_unique<LinuxScheduler>(), NoSwitchCost());
    for (int i = 0; i < sinks; ++i) {
      Thread* s = cpu.CreateThread("sink", ThreadClass::kBatch, 0);
      cpu.PostWork(*s, Duration::Seconds(1000));
    }
    Thread* editor = cpu.CreateThread("editor", ThreadClass::kGui, 0);
    TimePoint done = TimePoint::Infinite();
    sim.Schedule(Duration::Millis(25), [&] {
      cpu.PostWork(*editor, Duration::Millis(1), [&] { done = sim.Now(); },
                   WakeReason::kInputEvent);
    });
    sim.RunUntil(TimePoint::FromMicros(2000000));
    return done;
  };
  // 1 sink: running sink finishes its quantum at 30 ms, editor runs [30,31).
  EXPECT_EQ(run_with_sinks(1), TimePoint::FromMicros(31000));
  // 3 sinks: two queued sinks ahead of the editor plus the running sink's residual:
  // editor runs [50,51).
  EXPECT_EQ(run_with_sinks(3), TimePoint::FromMicros(51000));
  // 5 sinks: editor runs [70, 71).
  EXPECT_EQ(run_with_sinks(5), TimePoint::FromMicros(71000));
}

TEST(LinuxSchedulerTest, ReadyCountTracksQueue) {
  LinuxScheduler sched;
  Thread a(1, "a", ThreadClass::kBatch, 0);
  Thread b(2, "b", ThreadClass::kBatch, 0);
  EXPECT_EQ(sched.ReadyCount(), 0u);
  sched.OnReady(a, WakeReason::kOther);
  sched.OnReady(b, WakeReason::kOther);
  EXPECT_EQ(sched.ReadyCount(), 2u);
  sched.PickNext();
  EXPECT_EQ(sched.ReadyCount(), 1u);
}

}  // namespace
}  // namespace tcs
