// tcsctl — command-line driver for the tcs thin-client latency framework.
//
//   tcsctl <command> [flags]
//
// Commands:
//   idle     --os=tse|linux|ntws [--seconds=N]           idle-state profile (Figs 1-2)
//   typing   --os=... [--sinks=N --seconds=N --cpus=N]   stall vs load (Fig 3)
//   paging   --os=... [--full-demand --runs=N --protect] keystroke-after-hog (§5.2)
//   traffic  --protocol=rdp|x|lbx|slim|vnc [--steps=N]   app-workload bytes (§6.1.2)
//   webpage  [--no-banner --no-marquee --seconds=N]      Figure 4 page over RDP
//   gif      --protocol=... [--frames=N --seconds=N --loop-aware]  Figures 5/7
//   rtt      [--mbps=X --seconds=N]                      Figures 8-9 probe
//   sizing   --os=... --users=N                          utilization vs latency sizing
//   e2e      --os=... [--sinks=N --background-mbps=X --client=pc|winterm|handheld]
//   replay   <trace-file> --protocol=...                 replay a recorded session
//   help
//
// Add --csv to table-producing commands for machine-readable output.

#include <cstdio>
#include <memory>
#include <fstream>
#include <sstream>
#include <string>

#include "src/core/experiments.h"
#include "src/proto/lbx_protocol.h"
#include "src/proto/rdp_protocol.h"
#include "src/proto/slim_protocol.h"
#include "src/proto/vnc_protocol.h"
#include "src/proto/x_protocol.h"
#include "src/session/server.h"
#include "src/util/flags.h"
#include "src/util/table.h"
#include "src/workload/script_io.h"

namespace tcs {
namespace {

int Usage() {
  std::printf(
      "tcsctl — thin-client latency framework driver\n"
      "commands: idle typing paging traffic webpage gif rtt sizing e2e replay help\n"
      "run `tcsctl help` or see the header of tools/tcsctl.cc for flags.\n");
  return 2;
}

bool ParseOs(const std::string& word, OsProfile* profile) {
  if (word == "tse") {
    *profile = OsProfile::Tse();
  } else if (word == "linux") {
    *profile = OsProfile::LinuxX();
  } else if (word == "ntws") {
    *profile = OsProfile::NtWorkstation();
  } else if (word == "svr4") {
    *profile = OsProfile::LinuxSvr4();
  } else {
    std::fprintf(stderr, "unknown --os '%s' (tse|linux|ntws|svr4)\n", word.c_str());
    return false;
  }
  return true;
}

bool ParseProtocol(const std::string& word, ProtocolKind* kind) {
  if (word == "rdp") {
    *kind = ProtocolKind::kRdp;
  } else if (word == "x") {
    *kind = ProtocolKind::kX;
  } else if (word == "lbx") {
    *kind = ProtocolKind::kLbx;
  } else if (word == "slim") {
    *kind = ProtocolKind::kSlim;
  } else if (word == "vnc") {
    *kind = ProtocolKind::kVnc;
  } else {
    std::fprintf(stderr, "unknown --protocol '%s' (rdp|x|lbx|slim|vnc)\n", word.c_str());
    return false;
  }
  return true;
}

void Emit(const TextTable& table, bool csv) {
  std::printf("%s", csv ? table.RenderCsv().c_str() : table.Render().c_str());
}

int CmdIdle(FlagSet& flags) {
  OsProfile profile;
  if (!ParseOs(flags.GetString("os", "tse"), &profile)) {
    return 2;
  }
  int64_t seconds = flags.GetInt("seconds", 60);
  IdleProfileResult r = RunIdleProfile(profile, Duration::Seconds(seconds));
  TextTable table({"event length (ms)", "cumulative busy (s)"});
  for (const auto& pt : r.cumulative) {
    table.AddRow({TextTable::Fixed(pt.event_length.ToMillisF(), 1),
                  TextTable::Fixed(pt.cumulative_latency.ToSecondsF(), 3)});
  }
  Emit(table, flags.GetBool("csv"));
  std::printf("total idle busy over %llds: %s (%.2f%% of the trace)\n",
              static_cast<long long>(seconds), r.total_busy.ToString().c_str(),
              100.0 * r.total_busy.ToSecondsF() / static_cast<double>(seconds));
  return 0;
}

int CmdTyping(FlagSet& flags) {
  OsProfile profile;
  if (!ParseOs(flags.GetString("os", "tse"), &profile)) {
    return 2;
  }
  TypingUnderLoadResult r = RunTypingUnderLoad(
      profile, static_cast<int>(flags.GetInt("sinks", 0)),
      Duration::Seconds(flags.GetInt("seconds", 60)), 1,
      static_cast<int>(flags.GetInt("cpus", 1)));
  std::printf("%s, %d sinks: avg stall %.1f ms, max %.1f ms, jitter %.1f ms, %lld "
              "updates\n",
              r.os_name.c_str(), r.sinks, r.avg_stall_ms, r.max_stall_ms, r.jitter_ms,
              static_cast<long long>(r.updates));
  return 0;
}

int CmdPaging(FlagSet& flags) {
  OsProfile profile;
  if (!ParseOs(flags.GetString("os", "linux"), &profile)) {
    return 2;
  }
  EvictionPolicy policy = flags.GetBool("protect") ? EvictionPolicy::kInteractiveProtect
                                                   : EvictionPolicy::kGlobalLru;
  PagingLatencyResult r =
      RunPagingLatency(profile, flags.GetBool("full-demand", true),
                       static_cast<int>(flags.GetInt("runs", 10)), 1, policy);
  std::printf("%s (%s demand, %s): min %.0f ms, avg %.0f ms, max %.0f ms over %d runs\n",
              r.os_name.c_str(), r.full_demand ? ">=100%" : "<100%",
              policy == EvictionPolicy::kGlobalLru ? "global LRU" : "interactive-protect",
              r.min_ms, r.avg_ms, r.max_ms, r.runs);
  return 0;
}

int CmdTraffic(FlagSet& flags) {
  ProtocolKind kind;
  if (!ParseProtocol(flags.GetString("protocol", "rdp"), &kind)) {
    return 2;
  }
  ProtocolTrafficResult r =
      RunAppWorkloadTraffic(kind, 1, static_cast<int>(flags.GetInt("steps", 600)));
  TextTable table({"channel", "bytes", "messages"});
  table.AddRow({"input", TextTable::Num(r.input.bytes), TextTable::Num(r.input.messages)});
  table.AddRow(
      {"display", TextTable::Num(r.display.bytes), TextTable::Num(r.display.messages)});
  table.AddRow({"total", TextTable::Num(r.total_bytes), TextTable::Num(r.total_messages)});
  Emit(table, flags.GetBool("csv"));
  std::printf("avg message %.1f B; VIP would save %s\n", r.avg_message_size,
              TextTable::Percent(static_cast<double>(r.total_bytes - r.vip_bytes) /
                                 static_cast<double>(r.total_bytes), 2)
                  .c_str());
  return 0;
}

int CmdWebpage(FlagSet& flags) {
  AnimationLoadResult r = RunWebPageLoad(
      ProtocolKind::kRdp, !flags.GetBool("no-banner"), !flags.GetBool("no-marquee"),
      Duration::Seconds(flags.GetInt("seconds", 160)));
  std::printf("%s: sustained %.3f Mbps (mean %.3f); cache %lld hits / %lld misses\n",
              r.protocol.c_str(), r.sustained_mbps, r.mean_mbps,
              static_cast<long long>(r.cache_hits), static_cast<long long>(r.cache_misses));
  return 0;
}

int CmdGif(FlagSet& flags) {
  ProtocolKind kind;
  if (!ParseProtocol(flags.GetString("protocol", "rdp"), &kind)) {
    return 2;
  }
  GifAnimationOptions opt;
  opt.frames = static_cast<int>(flags.GetInt("frames", 10));
  opt.duration = Duration::Seconds(flags.GetInt("seconds", 20));
  if (flags.GetBool("loop-aware")) {
    opt.cache_policy = CachePolicy::kLoopAware;
  }
  AnimationLoadResult r = RunGifAnimation(kind, opt);
  std::printf("%s, %d frames: sustained %.3f Mbps; cache hit ratio %.1f%%\n",
              r.protocol.c_str(), opt.frames, r.sustained_mbps,
              r.cumulative_hit_ratio * 100.0);
  return 0;
}

int CmdRtt(FlagSet& flags) {
  RttProbeResult r = RunRttProbe(flags.GetDouble("mbps", 0.0),
                                 Duration::Seconds(flags.GetInt("seconds", 60)));
  std::printf("offered %.1f Mbps: mean RTT %.2f ms, variance %.3f ms^2\n",
              r.offered_mbps, r.mean_rtt_ms, r.rtt_variance);
  return 0;
}

int CmdSizing(FlagSet& flags) {
  OsProfile profile;
  if (!ParseOs(flags.GetString("os", "tse"), &profile)) {
    return 2;
  }
  SizingPoint p = RunServerSizing(profile, static_cast<int>(flags.GetInt("users", 10)));
  std::printf("%s, %d users: CPU %.1f%%, avg stall %.1f ms, worst user %.1f ms\n",
              p.os_name.c_str(), p.users, p.cpu_utilization * 100.0, p.avg_stall_ms,
              p.worst_stall_ms);
  return 0;
}

int CmdE2e(FlagSet& flags) {
  OsProfile profile;
  if (!ParseOs(flags.GetString("os", "tse"), &profile)) {
    return 2;
  }
  EndToEndOptions opt;
  opt.sinks = static_cast<int>(flags.GetInt("sinks", 0));
  opt.background_mbps = flags.GetDouble("background-mbps", 0.0);
  std::string client = flags.GetString("client", "pc");
  if (client == "pc") {
    opt.client = ThinClientConfig::DesktopPc();
  } else if (client == "winterm") {
    opt.client = ThinClientConfig::WinTerm();
  } else if (client == "handheld") {
    opt.client = ThinClientConfig::Handheld();
  } else {
    std::fprintf(stderr, "unknown --client '%s' (pc|winterm|handheld)\n", client.c_str());
    return 2;
  }
  EndToEndResult r = RunEndToEndLatency(profile, opt);
  std::printf("%s on %s: input %.2f + server %.2f + display %.2f + client %.2f = %.2f ms "
              "(%lld updates)\n",
              r.os_name.c_str(), r.client_name.c_str(), r.input_net_ms, r.server_ms,
              r.display_net_ms, r.client_ms, r.total_ms,
              static_cast<long long>(r.updates));
  return 0;
}

int CmdReplay(FlagSet& flags) {
  if (flags.positional().size() < 2) {
    std::fprintf(stderr, "replay needs a trace file\n");
    return 2;
  }
  ProtocolKind kind;
  if (!ParseProtocol(flags.GetString("protocol", "rdp"), &kind)) {
    return 2;
  }
  std::ifstream in(flags.positional()[1]);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", flags.positional()[1].c_str());
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  auto script = ParseScript(buffer.str(), &error);
  if (!script) {
    std::fprintf(stderr, "parse error: %s\n", error.c_str());
    return 2;
  }
  // Replay through the protocol-only harness used by the traffic experiments.
  Simulator sim;
  Link link(sim);
  MessageSender display(link, HeaderModel::TcpIp());
  MessageSender input(link, HeaderModel::TcpIp());
  ProtoTap tap(Duration::Seconds(1));
  Rng rng(1);
  std::unique_ptr<DisplayProtocol> protocol;
  switch (kind) {
    case ProtocolKind::kRdp:
      protocol = std::make_unique<RdpProtocol>(sim, display, input, &tap, rng);
      break;
    case ProtocolKind::kX:
      protocol = std::make_unique<XProtocol>(sim, display, input, &tap, rng);
      break;
    case ProtocolKind::kLbx:
      protocol = std::make_unique<LbxProtocol>(sim, display, input, &tap, rng);
      break;
    case ProtocolKind::kSlim:
      protocol = std::make_unique<SlimProtocol>(sim, display, input, &tap, rng);
      break;
    case ProtocolKind::kVnc: {
      auto vnc = std::make_unique<VncProtocol>(sim, display, input, &tap, rng);
      vnc->StartClientPull();
      protocol = std::move(vnc);
      break;
    }
  }
  script->Replay(sim, *protocol);
  sim.RunUntil(TimePoint::Zero() + script->TotalDuration());
  if (auto* vnc = dynamic_cast<VncProtocol*>(protocol.get())) {
    vnc->StopClientPull();
  }
  protocol->Flush();
  sim.Run();
  std::printf("replayed '%s' (%zu steps, %s of user time) over %s:\n",
              script->name().c_str(), script->steps().size(),
              script->TotalDuration().ToString().c_str(), protocol->name().c_str());
  std::printf("  display: %lld msgs, %lld bytes;  input: %lld msgs, %lld bytes\n",
              static_cast<long long>(tap.messages(Channel::kDisplay)),
              static_cast<long long>(tap.counted_bytes(Channel::kDisplay).count()),
              static_cast<long long>(tap.messages(Channel::kInput)),
              static_cast<long long>(tap.counted_bytes(Channel::kInput).count()));
  return 0;
}

int Run(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  std::string command = argv[1];
  FlagSet flags(argc, argv,
                {"os", "seconds", "sinks", "cpus", "full-demand", "runs", "protect",
                 "protocol", "steps", "no-banner", "no-marquee", "frames", "loop-aware",
                 "mbps", "users", "background-mbps", "client", "csv"});
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    return 2;
  }
  if (command == "idle") {
    return CmdIdle(flags);
  }
  if (command == "typing") {
    return CmdTyping(flags);
  }
  if (command == "paging") {
    return CmdPaging(flags);
  }
  if (command == "traffic") {
    return CmdTraffic(flags);
  }
  if (command == "webpage") {
    return CmdWebpage(flags);
  }
  if (command == "gif") {
    return CmdGif(flags);
  }
  if (command == "rtt") {
    return CmdRtt(flags);
  }
  if (command == "sizing") {
    return CmdSizing(flags);
  }
  if (command == "e2e") {
    return CmdE2e(flags);
  }
  if (command == "replay") {
    return CmdReplay(flags);
  }
  return Usage();
}

}  // namespace
}  // namespace tcs

int main(int argc, char** argv) {
  return tcs::Run(argc, argv);
}
