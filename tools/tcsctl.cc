// tcsctl — command-line driver for the tcs thin-client latency framework.
//
//   tcsctl <command> [flags]
//
// Commands:
//   idle     --os=tse|linux|ntws [--seconds=N]           idle-state profile (Figs 1-2)
//   typing   --os=... [--sinks=N --seconds=N --cpus=N]   stall vs load (Fig 3)
//   paging   --os=... [--full-demand --runs=N --protect] keystroke-after-hog (§5.2)
//   traffic  --protocol=rdp|x|lbx|slim|vnc [--steps=N]   app-workload bytes (§6.1.2)
//   webpage  [--no-banner --no-marquee --seconds=N]      Figure 4 page over RDP
//   gif      --protocol=... [--frames=N --seconds=N --loop-aware]  Figures 5/7
//   rtt      [--mbps=X --seconds=N]                      Figures 8-9 probe
//   sizing   --os=... --users=N                          utilization vs latency sizing
//   capacity [--os=tse,linux,linux:lbx --max-users=N --seconds=N --sinks=N
//            --burst-ms=N --burst-every-ms=N --ram-mib=N --max-util=0.85
//            --max-p99-ms=100 --jobs=N --seed=N --report-out=capacity.json]
//            admission-control capacity search: for every OS(:protocol) configuration,
//            binary-searches the maximum number of concurrently admitted interactive
//            users under both sizing doctrines — utilization-based (aggregate CPU below
//            --max-util) and latency-based (every user's p99 keystroke stall below
//            --max-p99-ms) — over the full consolidation stack: per-session protocol
//            pipelines multiplexed on the shared link, cross-session text-page sharing
//            in the pager, per-user typing plus periodic application bursts. Reports
//            both answers side by side and flags configurations where utilization
//            sizing over-admits. Output is byte-identical for any --jobs value.
//   e2e      --os=... [--sinks=N --background-mbps=X --client=pc|winterm|handheld]
//   sweep    --experiment=typing|sizing|e2e [--os=tse,linux,... --sinks=L --users=L
//            --seconds=N --jobs=N --seed=N]              parallel config-matrix sweep
//   chaos    --os=... [--loss=0,0.01,0.05 --flap-ms=0,50 --flap-every-ms=2000
//            --disk-stall=X --disconnect-ms=N --sinks=N --seconds=N --jobs=N --seed=N
//            --threshold-ms=150 --report-out=chaos.json]
//            fault-injection sweep: crosses frame-loss rates with link-outage ("flap")
//            lengths, runs the end-to-end typing workload under each deterministic fault
//            plan, and reports the keystroke latency distribution (p50/p99), the fraction
//            above the perception threshold, availability, and the retransmission ledger.
//            The first grid point whose p99 crosses --threshold-ms is called out. Output
//            is byte-identical for any --jobs value.
//   wan      --os=... [--profile=dsl,lte,satellite,congested-office --users=N
//            --seconds=N --jobs=N --seed=N --threshold-ms=150 --starve-after-ms=1000
//            --report-out=wan.json]
//            WAN pathology sweep: runs each named link profile (RTT + jitter, asymmetric
//            up/down bandwidth, bufferbloat drop-tail queue, Gilbert-Elliott burst loss)
//            twice — graceful degradation off, then on — with both arms sharing the same
//            seed, and compares worst-user p99, availability, and starvation. The
//            degrade-on arm arms the backpressure-driven DegradationController
//            (coalesce draw batches, thin animation frames, force harder bitmap caching,
//            pause background sessions) and reports its transition ledger. Output is
//            byte-identical for any --jobs value.
//   whatif   --os=... [--profile=lte --component=all|link,cpu,disk,rtt --speedup=2
//            --rtt-delta-ms=40 --users=N --seconds=N --degrade --jobs=N --seed=N
//            --report-out=whatif.json]
//            counterfactual what-if analysis: for each component, runs the WAN cell
//            twice — a baseline whose per-interaction critical paths feed the analytic
//            prediction (virtually speed up that one component), and an achieved arm
//            actually re-simulated with the speedup applied to the hardware model. The
//            table pairs the predicted p99 delta with the achieved one; the gap between
//            them is the second-order effects (queue drain, fewer RTOs, different
//            batching) the model cannot see. Output is byte-identical for any --jobs
//            value; the report JSON carries no wall-clock field, so CI can cmp(1) runs.
//   blame    [--os=tse,linux,linux:lbx --sinks=0,5 --seconds=N --background-mbps=X
//            --loss=X --flap-ms=N --threshold-ms=100 --profile=WAN --jobs=N --seed=N
//            --report-out=blame.json]
//            per-interaction latency attribution: runs the end-to-end keystroke workload
//            for every OS(:protocol) x sinks configuration and prints the per-stage blame
//            table — exactly where each interaction's microseconds went (input-net,
//            retransmit, sched-wait, cpu-service, mem-stall, proto-encode, display-net,
//            client-decode; stages sum exactly to end-to-end). Names the configuration
//            whose p99 first crosses --threshold-ms and the stage that dominates it.
//            An `--os` entry may carry a protocol suffix (e.g. linux:lbx runs the X
//            pipeline over LBX). With --profile=dsl|lte|satellite|congested-office the
//            runs go through that WAN pathology and a second table decomposes the
//            display-net stage into bufferbloat queueing, retransmit wait,
//            serialization, propagation, and jitter (sub-stages sum exactly to the
//            display-net total). Output is byte-identical for any --jobs value.
//   postmortem <experiment> [experiment flags] [--slo-p99-ms=100 --slo-availability=0.99
//            --slo-backlog-kb=N --slo-starved=X --postmortem-dir=postmortems]
//            run one experiment (typing|e2e|chaos|consolidation) under a (by default
//            tight) SLO; on violation the always-on flight recorder's frozen window and
//            a forensic summary are written as <dir>/<name>.trace.json and
//            <dir>/<name>.postmortem.json, deterministically named and byte-identical
//            across reruns. Prints the per-objective verdicts and bundle paths.
//            Consolidation also takes --rewind-ms=N [--checkpoint-every-ms=250
//            --rewind-out=FILE]: the run is checkpointed on a periodic ring, and when
//            the SLO trips a replay is forked from the newest checkpoint at least N
//            virtual ms before the violation with the full tracer attached. The fork
//            is deterministic — it reproduces the violation at the same virtual
//            instant — so the written trace is the actual lead-up, not a re-creation.
//   trace    <experiment> [experiment flags] [--out=trace.json --metrics-out=metrics.csv
//            --report-out=report.json --categories=cpu,sched,...]
//            run one experiment observed: writes a Perfetto-loadable Chrome trace, the
//            sampled gauge series as CSV, and a structured JSON report. Experiments:
//            typing|paging|e2e|sizing|traffic|gif (long aliases accepted). The trace is
//            byte-identical for a given seed.
//   replay   <trace-file> --protocol=...                 replay a recorded session
//   help
//
// Add --csv to table-producing commands for machine-readable output.
//
// `sweep` crosses the OS list with the load list (sinks for typing/e2e, users for
// sizing) and fans the configurations out over a worker pool (--jobs, default: all
// cores). Each configuration gets a deterministic seed derived from --seed and its
// position in the matrix, so output is byte-identical for any worker count.
//
// `sweep` (typing/e2e), `chaos`, and `capacity` also accept the --slo-* flags: each
// configuration is then watched by an SloWatchdog and violating cells leave forensic
// bundles under --postmortem-dir, even though the sweep itself runs trace-off.

#include <cstdio>
#include <memory>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/core/admission.h"
#include "src/core/checkpoint.h"
#include "src/core/experiments.h"
#include "src/core/parallel_sweep.h"
#include "src/core/report.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/proto/lbx_protocol.h"
#include "src/proto/rdp_protocol.h"
#include "src/proto/slim_protocol.h"
#include "src/proto/vnc_protocol.h"
#include "src/proto/x_protocol.h"
#include "src/session/server.h"
#include "src/util/config_error.h"
#include "src/util/flags.h"
#include "src/util/json.h"
#include "src/util/table.h"
#include "src/workload/script_io.h"

namespace tcs {
namespace {

int Usage() {
  std::printf(
      "tcsctl — thin-client latency framework driver\n"
      "commands: idle typing paging traffic webpage gif rtt sizing capacity e2e sweep "
      "chaos wan whatif blame postmortem trace replay help\n"
      "run `tcsctl help` or see the header of tools/tcsctl.cc for flags.\n");
  return 2;
}

bool ParseOs(const std::string& word, OsProfile* profile) {
  if (word == "tse") {
    *profile = OsProfile::Tse();
  } else if (word == "linux") {
    *profile = OsProfile::LinuxX();
  } else if (word == "ntws") {
    *profile = OsProfile::NtWorkstation();
  } else if (word == "svr4") {
    *profile = OsProfile::LinuxSvr4();
  } else {
    std::fprintf(stderr, "unknown --os '%s' (tse|linux|ntws|svr4)\n", word.c_str());
    return false;
  }
  return true;
}

bool ParseProtocol(const std::string& word, ProtocolKind* kind) {
  if (word == "rdp") {
    *kind = ProtocolKind::kRdp;
  } else if (word == "x") {
    *kind = ProtocolKind::kX;
  } else if (word == "lbx") {
    *kind = ProtocolKind::kLbx;
  } else if (word == "slim") {
    *kind = ProtocolKind::kSlim;
  } else if (word == "vnc") {
    *kind = ProtocolKind::kVnc;
  } else {
    std::fprintf(stderr, "unknown --protocol '%s' (rdp|x|lbx|slim|vnc)\n", word.c_str());
    return false;
  }
  return true;
}

void Emit(const TextTable& table, bool csv) {
  std::printf("%s", csv ? table.RenderCsv().c_str() : table.Render().c_str());
}

int CmdIdle(FlagSet& flags) {
  OsProfile profile;
  if (!ParseOs(flags.GetString("os", "tse"), &profile)) {
    return 2;
  }
  int64_t seconds = flags.GetInt("seconds", 60);
  IdleProfileResult r = RunIdleProfile(profile, Duration::Seconds(seconds));
  TextTable table({"event length (ms)", "cumulative busy (s)"});
  for (const auto& pt : r.cumulative) {
    table.AddRow({TextTable::Fixed(pt.event_length.ToMillisF(), 1),
                  TextTable::Fixed(pt.cumulative_latency.ToSecondsF(), 3)});
  }
  Emit(table, flags.GetBool("csv"));
  std::printf("total idle busy over %llds: %s (%.2f%% of the trace)\n",
              static_cast<long long>(seconds), r.total_busy.ToString().c_str(),
              100.0 * r.total_busy.ToSecondsF() / static_cast<double>(seconds));
  return 0;
}

int CmdTyping(FlagSet& flags) {
  OsProfile profile;
  if (!ParseOs(flags.GetString("os", "tse"), &profile)) {
    return 2;
  }
  TypingUnderLoadResult r = RunTypingUnderLoad(
      profile, static_cast<int>(flags.GetInt("sinks", 0)),
      Duration::Seconds(flags.GetInt("seconds", 60)), 1,
      static_cast<int>(flags.GetInt("cpus", 1)));
  std::printf("%s, %d sinks: avg stall %.1f ms, max %.1f ms, jitter %.1f ms, %lld "
              "updates\n",
              r.os_name.c_str(), r.sinks, r.avg_stall_ms, r.max_stall_ms, r.jitter_ms,
              static_cast<long long>(r.updates));
  return 0;
}

int CmdPaging(FlagSet& flags) {
  OsProfile profile;
  if (!ParseOs(flags.GetString("os", "linux"), &profile)) {
    return 2;
  }
  EvictionPolicy policy = flags.GetBool("protect") ? EvictionPolicy::kInteractiveProtect
                                                   : EvictionPolicy::kGlobalLru;
  PagingLatencyResult r =
      RunPagingLatency(profile, flags.GetBool("full-demand", true),
                       static_cast<int>(flags.GetInt("runs", 10)), 1, policy);
  std::printf("%s (%s demand, %s): min %.0f ms, avg %.0f ms, max %.0f ms over %d runs\n",
              r.os_name.c_str(), r.full_demand ? ">=100%" : "<100%",
              policy == EvictionPolicy::kGlobalLru ? "global LRU" : "interactive-protect",
              r.min_ms, r.avg_ms, r.max_ms, r.runs);
  return 0;
}

int CmdTraffic(FlagSet& flags) {
  ProtocolKind kind;
  if (!ParseProtocol(flags.GetString("protocol", "rdp"), &kind)) {
    return 2;
  }
  ProtocolTrafficResult r =
      RunAppWorkloadTraffic(kind, 1, static_cast<int>(flags.GetInt("steps", 600)));
  TextTable table({"channel", "bytes", "messages"});
  table.AddRow({"input", TextTable::Num(r.input.bytes), TextTable::Num(r.input.messages)});
  table.AddRow(
      {"display", TextTable::Num(r.display.bytes), TextTable::Num(r.display.messages)});
  table.AddRow({"total", TextTable::Num(r.total_bytes), TextTable::Num(r.total_messages)});
  Emit(table, flags.GetBool("csv"));
  std::printf("avg message %.1f B; VIP would save %s\n", r.avg_message_size,
              TextTable::Percent(static_cast<double>(r.total_bytes - r.vip_bytes) /
                                 static_cast<double>(r.total_bytes), 2)
                  .c_str());
  return 0;
}

int CmdWebpage(FlagSet& flags) {
  AnimationLoadResult r = RunWebPageLoad(
      ProtocolKind::kRdp, !flags.GetBool("no-banner"), !flags.GetBool("no-marquee"),
      Duration::Seconds(flags.GetInt("seconds", 160)));
  std::printf("%s: sustained %.3f Mbps (mean %.3f); cache %lld hits / %lld misses\n",
              r.protocol.c_str(), r.sustained_mbps, r.mean_mbps,
              static_cast<long long>(r.cache_hits), static_cast<long long>(r.cache_misses));
  return 0;
}

int CmdGif(FlagSet& flags) {
  ProtocolKind kind;
  if (!ParseProtocol(flags.GetString("protocol", "rdp"), &kind)) {
    return 2;
  }
  GifAnimationOptions opt;
  opt.frames = static_cast<int>(flags.GetInt("frames", 10));
  opt.duration = Duration::Seconds(flags.GetInt("seconds", 20));
  if (flags.GetBool("loop-aware")) {
    opt.cache_policy = CachePolicy::kLoopAware;
  }
  AnimationLoadResult r = RunGifAnimation(kind, opt);
  std::printf("%s, %d frames: sustained %.3f Mbps; cache hit ratio %.1f%%\n",
              r.protocol.c_str(), opt.frames, r.sustained_mbps,
              r.cumulative_hit_ratio * 100.0);
  return 0;
}

int CmdRtt(FlagSet& flags) {
  RttProbeResult r = RunRttProbe(flags.GetDouble("mbps", 0.0),
                                 Duration::Seconds(flags.GetInt("seconds", 60)));
  std::printf("offered %.1f Mbps: mean RTT %.2f ms, variance %.3f ms^2\n",
              r.offered_mbps, r.mean_rtt_ms, r.rtt_variance);
  return 0;
}

int CmdSizing(FlagSet& flags) {
  OsProfile profile;
  if (!ParseOs(flags.GetString("os", "tse"), &profile)) {
    return 2;
  }
  SizingPoint p = RunServerSizing(profile, static_cast<int>(flags.GetInt("users", 10)));
  std::printf("%s, %d users: CPU %.1f%%, avg stall %.1f ms, worst user %.1f ms\n",
              p.os_name.c_str(), p.users, p.cpu_utilization * 100.0, p.avg_stall_ms,
              p.worst_stall_ms);
  return 0;
}

int CmdE2e(FlagSet& flags) {
  OsProfile profile;
  if (!ParseOs(flags.GetString("os", "tse"), &profile)) {
    return 2;
  }
  EndToEndOptions opt;
  opt.sinks = static_cast<int>(flags.GetInt("sinks", 0));
  opt.background_mbps = flags.GetDouble("background-mbps", 0.0);
  std::string client = flags.GetString("client", "pc");
  if (client == "pc") {
    opt.client = ThinClientConfig::DesktopPc();
  } else if (client == "winterm") {
    opt.client = ThinClientConfig::WinTerm();
  } else if (client == "handheld") {
    opt.client = ThinClientConfig::Handheld();
  } else {
    std::fprintf(stderr, "unknown --client '%s' (pc|winterm|handheld)\n", client.c_str());
    return 2;
  }
  EndToEndResult r = RunEndToEndLatency(profile, opt);
  std::printf("%s on %s: input %.2f + server %.2f + display %.2f + client %.2f = %.2f ms "
              "(%lld updates)\n",
              r.os_name.c_str(), r.client_name.c_str(), r.input_net_ms, r.server_ms,
              r.display_net_ms, r.client_ms, r.total_ms,
              static_cast<long long>(r.updates));
  return 0;
}

// Splits a comma-separated flag value ("0,2,5") into tokens.
std::vector<std::string> SplitList(const std::string& value) {
  std::vector<std::string> out;
  std::string token;
  std::stringstream stream(value);
  while (std::getline(stream, token, ',')) {
    if (!token.empty()) {
      out.push_back(token);
    }
  }
  return out;
}

bool ParseIntList(const std::string& value, const char* flag, std::vector<int>* out) {
  for (const std::string& token : SplitList(value)) {
    try {
      out->push_back(std::stoi(token));
    } catch (...) {
      std::fprintf(stderr, "bad --%s entry '%s'\n", flag, token.c_str());
      return false;
    }
  }
  return true;
}

SloSpec SloSpecFromFlags(FlagSet& flags);

int CmdSweep(FlagSet& flags) {
  std::string experiment = flags.GetString("experiment", "typing");
  if (experiment != "typing" && experiment != "sizing" && experiment != "e2e") {
    std::fprintf(stderr, "unknown --experiment '%s' (typing|sizing|e2e)\n",
                 experiment.c_str());
    return 2;
  }

  std::string os_list = flags.GetString("os", "all");
  if (os_list == "all") {
    os_list = "tse,linux,ntws,svr4";
  }
  std::vector<OsProfile> profiles;
  for (const std::string& word : SplitList(os_list)) {
    OsProfile profile;
    if (!ParseOs(word, &profile)) {
      return 2;
    }
    profiles.push_back(std::move(profile));
  }

  std::vector<int> loads;  // sinks for typing/e2e, users for sizing
  const char* load_label = experiment == "sizing" ? "users" : "sinks";
  std::string load_default = experiment == "sizing" ? "2,4,8,16" : "0,2,5,10";
  if (!ParseIntList(flags.GetString(load_label, load_default), load_label, &loads)) {
    return 2;
  }
  if (profiles.empty() || loads.empty()) {
    std::fprintf(stderr, "sweep needs at least one --os and one --%s value\n", load_label);
    return 2;
  }

  Duration seconds = Duration::Seconds(flags.GetInt("seconds", 30));
  uint64_t base_seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  int jobs = static_cast<int>(flags.GetInt("jobs", 0));
  int load_count = static_cast<int>(loads.size());
  int configs = static_cast<int>(profiles.size()) * load_count;
  SloSpec base_slo = SloSpecFromFlags(flags);
  if (base_slo.Any() && experiment == "sizing") {
    std::fprintf(stderr, "--slo-* flags are not supported for --experiment=sizing "
                         "(use typing or e2e)\n");
    return 2;
  }

  // One row per configuration, OS-major, load-minor: the same order the equivalent
  // serial loops would produce, regardless of --jobs.
  ParallelSweep sweep(jobs);
  TextTable table = [&] {
    if (experiment == "typing") {
      return TextTable({"os", "sinks", "avg stall (ms)", "max stall (ms)", "jitter (ms)",
                        "updates"});
    }
    if (experiment == "sizing") {
      return TextTable({"os", "users", "CPU util", "avg stall (ms)", "worst user (ms)"});
    }
    return TextTable({"os", "sinks", "input (ms)", "server (ms)", "display (ms)",
                      "client (ms)", "total (ms)"});
  }();

  std::vector<std::vector<std::string>> rows;
  std::vector<SloReport> slo_reports;  // config order; empty unless --slo-* given
  if (experiment == "typing") {
    auto results = sweep.Map(configs, [&](int i) {
      if (!base_slo.Any()) {
        return RunTypingUnderLoad(profiles[static_cast<size_t>(i / load_count)],
                                  loads[static_cast<size_t>(i % load_count)], seconds,
                                  SweepSeed(base_seed, static_cast<uint64_t>(i)));
      }
      SloSpec cfg_slo = base_slo;
      cfg_slo.name = "sweep_typing_cfg" + std::to_string(i);
      ObsConfig obs;
      obs.slo = &cfg_slo;
      return RunTypingUnderLoad(profiles[static_cast<size_t>(i / load_count)],
                                loads[static_cast<size_t>(i % load_count)], seconds,
                                SweepSeed(base_seed, static_cast<uint64_t>(i)), 1, &obs);
    });
    for (TypingUnderLoadResult& r : results) {
      rows.push_back({r.os_name, TextTable::Num(r.sinks),
                      TextTable::Fixed(r.avg_stall_ms, 1),
                      TextTable::Fixed(r.max_stall_ms, 1),
                      TextTable::Fixed(r.jitter_ms, 1), TextTable::Num(r.updates)});
      slo_reports.push_back(std::move(r.slo));
    }
  } else if (experiment == "sizing") {
    auto results = sweep.Map(configs, [&](int i) {
      return RunServerSizing(profiles[static_cast<size_t>(i / load_count)],
                             loads[static_cast<size_t>(i % load_count)], {}, seconds,
                             SweepSeed(base_seed, static_cast<uint64_t>(i)));
    });
    for (const SizingPoint& p : results) {
      rows.push_back({p.os_name, TextTable::Num(p.users),
                      TextTable::Percent(p.cpu_utilization, 1),
                      TextTable::Fixed(p.avg_stall_ms, 1),
                      TextTable::Fixed(p.worst_stall_ms, 1)});
    }
  } else {
    double background_mbps = flags.GetDouble("background-mbps", 0.0);
    auto results = sweep.Map(configs, [&](int i) {
      EndToEndOptions opt;
      opt.sinks = loads[static_cast<size_t>(i % load_count)];
      opt.background_mbps = background_mbps;
      opt.duration = seconds;
      opt.seed = SweepSeed(base_seed, static_cast<uint64_t>(i));
      if (!base_slo.Any()) {
        return RunEndToEndLatency(profiles[static_cast<size_t>(i / load_count)], opt);
      }
      SloSpec cfg_slo = base_slo;
      cfg_slo.name = "sweep_e2e_cfg" + std::to_string(i);
      ObsConfig obs;
      obs.slo = &cfg_slo;
      return RunEndToEndLatency(profiles[static_cast<size_t>(i / load_count)], opt, &obs);
    });
    for (size_t i = 0; i < results.size(); ++i) {
      EndToEndResult& r = results[i];
      rows.push_back({r.os_name, TextTable::Num(loads[i % loads.size()]),
                      TextTable::Fixed(r.input_net_ms, 2),
                      TextTable::Fixed(r.server_ms, 2),
                      TextTable::Fixed(r.display_net_ms, 2),
                      TextTable::Fixed(r.client_ms, 2), TextTable::Fixed(r.total_ms, 2)});
      slo_reports.push_back(std::move(r.slo));
    }
  }
  for (auto& row : rows) {
    table.AddRow(std::move(row));
  }
  Emit(table, flags.GetBool("csv"));
  if (base_slo.Any()) {
    int violated = 0;
    for (size_t i = 0; i < slo_reports.size(); ++i) {
      const SloReport& slo = slo_reports[i];
      if (!slo.active || slo.passed) {
        continue;
      }
      ++violated;
      std::printf("SLO violated at config %zu: %s\n", i,
                  slo.violating_objective.c_str());
      for (const std::string& path : slo.postmortems) {
        std::printf("  postmortem: %s\n", path.c_str());
      }
    }
    std::printf("SLO: %d of %d configs violated\n", violated, configs);
  }
  // stderr, so stdout stays byte-identical for any --jobs value (and CSV stays clean).
  std::fprintf(stderr, "%d configs over %d workers\n", configs, sweep.workers());
  return 0;
}

bool ParseDoubleList(const std::string& value, const char* flag,
                     std::vector<double>* out) {
  for (const std::string& token : SplitList(value)) {
    try {
      out->push_back(std::stod(token));
    } catch (...) {
      std::fprintf(stderr, "bad --%s entry '%s'\n", flag, token.c_str());
      return false;
    }
  }
  return true;
}

bool WriteFile(const std::string& path, const std::string& contents);

// The shared --slo-* flags as an SloSpec; a spec with no flags set checks nothing
// (Any() is false), so commands only pay for the watchdog when asked.
SloSpec SloSpecFromFlags(FlagSet& flags) {
  SloSpec spec;
  spec.max_worst_p99_ms = flags.GetDouble("slo-p99-ms", 0.0);
  spec.min_availability = flags.GetDouble("slo-availability", 0.0);
  spec.max_link_backlog_bytes = flags.GetInt("slo-backlog-kb", 0) * 1024;
  spec.max_starved_fraction = flags.GetDouble("slo-starved", -1.0);
  spec.out_dir = flags.GetString("postmortem-dir", "postmortems");
  return spec;
}

// Per-objective verdicts plus any bundle paths, for humans.
void PrintSloReport(const SloReport& slo, const char* label) {
  if (!slo.active) {
    return;
  }
  for (const SloObjectiveResult& o : slo.objectives) {
    std::printf("%s  %-20s limit %.3f observed %.3f  %s\n", label, o.objective.c_str(),
                o.limit, o.observed, o.passed ? "ok" : "VIOLATED");
  }
  if (!slo.passed) {
    std::printf("%s  first violation: %s at %.3f ms virtual\n", label,
                slo.violating_objective.c_str(),
                static_cast<double>(slo.violated_at_us) / 1000.0);
    for (const std::string& path : slo.postmortems) {
      std::printf("%s  postmortem: %s\n", label, path.c_str());
    }
  }
}

int CmdChaos(FlagSet& flags) {
  OsProfile profile;
  if (!ParseOs(flags.GetString("os", "tse"), &profile)) {
    return 2;
  }
  std::vector<double> losses;
  if (!ParseDoubleList(flags.GetString("loss", "0,0.01,0.05"), "loss", &losses)) {
    return 2;
  }
  std::vector<int> flap_ms;
  if (!ParseIntList(flags.GetString("flap-ms", "0,50"), "flap-ms", &flap_ms)) {
    return 2;
  }
  if (losses.empty() || flap_ms.empty()) {
    std::fprintf(stderr, "chaos needs at least one --loss and one --flap-ms value\n");
    return 2;
  }
  for (double loss : losses) {
    if (loss < 0.0 || loss >= 1.0) {
      std::fprintf(stderr, "--loss entries must be in [0,1)\n");
      return 2;
    }
  }

  Duration flap_every = Duration::Millis(flags.GetInt("flap-every-ms", 2000));
  double disk_stall = flags.GetDouble("disk-stall", 0.0);
  Duration disconnect_every = Duration::Millis(flags.GetInt("disconnect-ms", 0));
  Duration threshold = Duration::Millis(flags.GetInt("threshold-ms", 150));
  Duration seconds = Duration::Seconds(flags.GetInt("seconds", 30));
  int sinks = static_cast<int>(flags.GetInt("sinks", 0));
  uint64_t base_seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  int jobs = static_cast<int>(flags.GetInt("jobs", 0));
  int flap_count = static_cast<int>(flap_ms.size());
  int configs = static_cast<int>(losses.size()) * flap_count;

  // Loss-major, flap-minor, each config with a position-derived seed: the grid is
  // byte-identical for any --jobs value. With --slo-* flags, every cell runs under its
  // own watchdog and run-local flight recorder (the sweep stays trace-off); violating
  // cells leave bundles named by grid position + seed, so --jobs cannot rename them.
  SloSpec base_slo = SloSpecFromFlags(flags);
  ParallelSweep sweep(jobs);
  auto points = sweep.Map(configs, [&](int i) {
    ChaosOptions opt;
    opt.loss_rate = losses[static_cast<size_t>(i / flap_count)];
    int flap = flap_ms[static_cast<size_t>(i % flap_count)];
    if (flap > 0) {
      opt.flap_every = flap_every;
      opt.flap_duration = Duration::Millis(flap);
    }
    opt.disk_stall_rate = disk_stall;
    opt.disconnect_every = disconnect_every;
    opt.sinks = sinks;
    opt.duration = seconds;
    opt.seed = SweepSeed(base_seed, static_cast<uint64_t>(i));
    opt.threshold = threshold;
    if (!base_slo.Any()) {
      return RunChaosPoint(profile, opt);
    }
    SloSpec cell_slo = base_slo;
    cell_slo.name =
        "chaos_cell" + std::to_string(i) + "_seed" + std::to_string(opt.seed);
    ObsConfig obs;
    obs.slo = &cell_slo;
    return RunChaosPoint(profile, opt, &obs);
  });

  TextTable table({"loss", "flap (ms)", "p50 (ms)", "p99 (ms)", "mean (ms)",
                   "> threshold", "availability", "retransmits", "updates"});
  const ChaosPoint* first_crossing = nullptr;
  for (const ChaosPoint& p : points) {
    table.AddRow({TextTable::Percent(p.loss_rate, 1), TextTable::Fixed(p.flap_ms, 0),
                  TextTable::Fixed(p.p50_ms, 2), TextTable::Fixed(p.p99_ms, 2),
                  TextTable::Fixed(p.mean_ms, 2),
                  TextTable::Percent(p.perceptible_fraction, 1),
                  TextTable::Percent(p.faults.availability, 2),
                  TextTable::Num(p.retransmissions), TextTable::Num(p.updates)});
    if (first_crossing == nullptr && p.crosses_threshold) {
      first_crossing = &p;
    }
  }
  Emit(table, flags.GetBool("csv"));
  // Blame view of the same grid: the share of end-to-end time each stage owns at each
  // point. As loss and flapping grow, time visibly migrates out of the service stages
  // into retransmit and the network legs.
  TextTable blame_table({"loss", "flap (ms)", "input-net", "retransmit", "sched-wait",
                         "cpu", "mem", "proto", "display-net", "decode"});
  for (const ChaosPoint& p : points) {
    std::vector<std::string> row = {TextTable::Percent(p.loss_rate, 1),
                                    TextTable::Fixed(p.flap_ms, 0)};
    for (const StageSummary& s : p.blame.stages) {
      row.push_back(TextTable::Percent(s.share, 1));
    }
    blame_table.AddRow(std::move(row));
  }
  std::printf("per-stage share of end-to-end latency:\n");
  Emit(blame_table, flags.GetBool("csv"));
  if (first_crossing != nullptr) {
    std::printf("p99 first crosses %lld ms at loss %.1f%% / flap %.0f ms "
                "(p99 %.1f ms, %.1f%% of keystrokes perceptible)\n",
                static_cast<long long>(threshold.ToMicros() / 1000),
                first_crossing->loss_rate * 100.0, first_crossing->flap_ms,
                first_crossing->p99_ms, first_crossing->perceptible_fraction * 100.0);
  } else {
    std::printf("p99 stays under %lld ms across the grid\n",
                static_cast<long long>(threshold.ToMicros() / 1000));
  }
  if (base_slo.Any()) {
    int violated = 0;
    for (size_t i = 0; i < points.size(); ++i) {
      const ChaosPoint& p = points[i];
      if (!p.slo.active || p.slo.passed) {
        continue;
      }
      ++violated;
      std::printf("SLO violated at loss %.1f%% / flap %.0f ms: %s\n", p.loss_rate * 100.0,
                  p.flap_ms, p.slo.violating_objective.c_str());
      for (const std::string& path : p.slo.postmortems) {
        std::printf("  postmortem: %s\n", path.c_str());
      }
    }
    std::printf("SLO: %d of %d cells violated\n", violated, configs);
  }

  std::string report_path = flags.GetString("report-out", "");
  if (!report_path.empty()) {
    std::string report = "{\"experiment\":\"chaos_sweep\",\"points\":[";
    for (size_t i = 0; i < points.size(); ++i) {
      if (i > 0) {
        report += ',';
      }
      report += ToJson(points[i]);
    }
    report += "]}\n";
    if (!WriteFile(report_path, report)) {
      return 1;
    }
  }
  // stderr, so stdout stays byte-identical for any --jobs value.
  std::fprintf(stderr, "%d chaos points over %d workers\n", configs, sweep.workers());
  return 0;
}

int CmdWan(FlagSet& flags) {
  OsProfile profile;
  if (!ParseOs(flags.GetString("os", "tse"), &profile)) {
    return 2;
  }
  std::vector<std::string> names = SplitList(flags.GetString("profile", ""));
  if (names.empty()) {
    names = WanProfileNames();
  }
  // Resolve every profile up front so a typo fails fast instead of mid-sweep.
  std::vector<WanProfile> wan_profiles;
  for (const std::string& name : names) {
    try {
      wan_profiles.push_back(WanProfileByName(name));
    } catch (const ConfigError& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  }

  Duration seconds = Duration::Seconds(flags.GetInt("seconds", 30));
  Duration threshold = Duration::Millis(flags.GetInt("threshold-ms", 150));
  Duration starve_after = Duration::Millis(flags.GetInt("starve-after-ms", 1000));
  int users = static_cast<int>(flags.GetInt("users", 3));
  uint64_t base_seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  int jobs = static_cast<int>(flags.GetInt("jobs", 0));
  int configs = static_cast<int>(wan_profiles.size()) * 2;

  // Profile-major, arm-minor: cell 2k is profile k with degradation off, cell 2k+1 the
  // same profile with degradation on. Both arms of a profile share the SAME seed, so the
  // comparison isolates the controller — identical workload, identical fault draws.
  SloSpec base_slo = SloSpecFromFlags(flags);
  ParallelSweep sweep(jobs);
  auto points = sweep.Map(configs, [&](int i) {
    int p = i / 2;
    WanOptions opt;
    opt.profile = wan_profiles[static_cast<size_t>(p)];
    opt.degrade = (i % 2) == 1;
    opt.users = users;
    opt.duration = seconds;
    opt.seed = SweepSeed(base_seed, static_cast<uint64_t>(p));
    opt.threshold = threshold;
    opt.starve_after = starve_after;
    if (!base_slo.Any()) {
      return RunWanPoint(profile, opt);
    }
    SloSpec cell_slo = base_slo;
    cell_slo.name = "wan_" + std::to_string(i) + "_seed" + std::to_string(opt.seed);
    ObsConfig obs;
    obs.slo = &cell_slo;
    return RunWanPoint(profile, opt, &obs);
  });

  TextTable table({"profile", "degrade", "worst p99 (ms)", "mean (ms)", "> threshold",
                   "availability", "worst starved", "shed", "queue drops", "updates"});
  for (const WanPoint& p : points) {
    table.AddRow({p.profile, p.degrade ? "on" : "off", TextTable::Fixed(p.worst_p99_ms, 2),
                  TextTable::Fixed(p.mean_ms, 2),
                  TextTable::Percent(p.perceptible_fraction, 1),
                  TextTable::Percent(p.availability, 2),
                  TextTable::Percent(p.worst_starved_fraction, 1),
                  TextTable::Num(static_cast<int64_t>(p.faults.frames_shed)),
                  TextTable::Num(static_cast<int64_t>(p.faults.wan_queue_drops)),
                  TextTable::Num(p.updates)});
  }
  Emit(table, flags.GetBool("csv"));
  // Blame view: under WAN pathology the share migrates into retransmit and display-net;
  // with degradation on, part of it moves to the degr-hold column (the coalesce hold is
  // billed to its own stage, appended after decode; off-arm rows leave it empty).
  TextTable blame_table({"profile", "degrade", "input-net", "retransmit", "sched-wait",
                         "cpu", "mem", "proto", "display-net", "decode", "degr-hold"});
  for (const WanPoint& p : points) {
    std::vector<std::string> row = {p.profile, p.degrade ? "on" : "off"};
    for (const StageSummary& s : p.blame.stages) {
      row.push_back(TextTable::Percent(s.share, 1));
    }
    blame_table.AddRow(std::move(row));
  }
  std::printf("per-stage share of end-to-end latency:\n");
  Emit(blame_table, flags.GetBool("csv"));

  // Degrade-on vs degrade-off, per profile: the headline comparison.
  int better_both = 0;
  for (size_t p = 0; p + 1 < points.size(); p += 2) {
    const WanPoint& off = points[p];
    const WanPoint& on = points[p + 1];
    bool p99_better = on.worst_p99_ms < off.worst_p99_ms;
    bool avail_better = on.availability > off.availability;
    if (p99_better && avail_better) {
      ++better_both;
    }
    std::printf(
        "%-16s degrade on vs off: worst p99 %.2f -> %.2f ms (%+.1f%%), availability "
        "%.2f%% -> %.2f%% (peak level %d, %lld transitions, %.1fs degraded, "
        "%lld animation frames thinned)\n",
        off.profile.c_str(), off.worst_p99_ms, on.worst_p99_ms,
        off.worst_p99_ms > 0.0
            ? (on.worst_p99_ms - off.worst_p99_ms) / off.worst_p99_ms * 100.0
            : 0.0,
        off.availability * 100.0, on.availability * 100.0, on.degradation_peak_level,
        static_cast<long long>(on.degradation_transitions), on.degraded_seconds,
        static_cast<long long>(on.animation_frames_skipped));
  }
  std::printf("degradation improves worst-user p99 AND availability on %d of %d "
              "profiles\n",
              better_both, configs / 2);
  if (base_slo.Any()) {
    int violated = 0;
    for (const WanPoint& p : points) {
      if (!p.slo.active || p.slo.passed) {
        continue;
      }
      ++violated;
      std::printf("SLO violated on %s (degrade %s): %s\n", p.profile.c_str(),
                  p.degrade ? "on" : "off", p.slo.violating_objective.c_str());
      for (const std::string& path : p.slo.postmortems) {
        std::printf("  postmortem: %s\n", path.c_str());
      }
    }
    std::printf("SLO: %d of %d cells violated\n", violated, configs);
  }

  std::string report_path = flags.GetString("report-out", "");
  if (!report_path.empty()) {
    std::string report = "{\"experiment\":\"wan_sweep\",\"points\":[";
    for (size_t i = 0; i < points.size(); ++i) {
      if (i > 0) {
        report += ',';
      }
      report += ToJson(points[i]);
    }
    report += "]}\n";
    if (!WriteFile(report_path, report)) {
      return 1;
    }
  }
  // stderr, so stdout stays byte-identical for any --jobs value.
  std::fprintf(stderr, "%d wan points over %d workers\n", configs, sweep.workers());
  return 0;
}

bool ParseComponent(const std::string& word, WhatIfAdjustment::Component* component) {
  if (word == "link") {
    *component = WhatIfAdjustment::Component::kLink;
  } else if (word == "cpu") {
    *component = WhatIfAdjustment::Component::kCpu;
  } else if (word == "disk") {
    *component = WhatIfAdjustment::Component::kDisk;
  } else if (word == "rtt") {
    *component = WhatIfAdjustment::Component::kRtt;
  } else {
    std::fprintf(stderr, "unknown --component '%s' (link|cpu|disk|rtt|all)\n",
                 word.c_str());
    return false;
  }
  return true;
}

int CmdWhatIf(FlagSet& flags) {
  OsProfile profile;
  std::string os_word = flags.GetString("os", "tse");
  if (!ParseOs(os_word, &profile)) {
    return 2;
  }
  std::string profile_name = flags.GetString("profile", "lte");
  WanProfile wan;
  try {
    wan = WanProfileByName(profile_name);
  } catch (const ConfigError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  std::string component_word = flags.GetString("component", "all");
  std::vector<std::string> words =
      component_word == "all" ? std::vector<std::string>{"link", "cpu", "disk", "rtt"}
                              : SplitList(component_word);
  std::vector<WhatIfAdjustment::Component> components;
  for (const std::string& w : words) {
    WhatIfAdjustment::Component c;
    if (!ParseComponent(w, &c)) {
      return 2;
    }
    components.push_back(c);
  }
  if (components.empty()) {
    std::fprintf(stderr, "whatif needs at least one --component\n");
    return 2;
  }

  double speedup = flags.GetDouble("speedup", 2.0);
  int64_t rtt_delta_ms = flags.GetInt("rtt-delta-ms", 40);
  WanOptions wan_opt;
  wan_opt.profile = wan;
  wan_opt.degrade = flags.GetBool("degrade");
  wan_opt.users = static_cast<int>(flags.GetInt("users", 3));
  wan_opt.duration = Duration::Seconds(flags.GetInt("seconds", 30));
  wan_opt.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  int jobs = static_cast<int>(flags.GetInt("jobs", 0));

  // Every cell shares the same WAN options and seed, so every baseline arm is the SAME
  // deterministic run: the rows differ only in which component the counterfactual
  // touches, and output is byte-identical for any --jobs value.
  ParallelSweep sweep(jobs);
  auto results = sweep.Map(static_cast<int>(components.size()), [&](int i) {
    WhatIfOptions opt;
    opt.wan = wan_opt;
    opt.adjust.component = components[static_cast<size_t>(i)];
    opt.adjust.speedup = speedup;
    opt.adjust.rtt_delta_us = rtt_delta_ms * 1000;
    return RunWhatIf(profile, opt);
  });

  auto ms = [](int64_t us) { return static_cast<double>(us) / 1000.0; };
  TextTable table({"component", "counterfactual", "baseline p99 (ms)",
                   "predicted p99 (ms)", "achieved p99 (ms)", "pred delta (ms)",
                   "ach delta (ms)", "model gap (ms)"});
  for (const WhatIfResult& r : results) {
    std::string what = r.component == "rtt"
                           ? "-" + TextTable::Num(rtt_delta_ms) + " ms RTT"
                           : "x" + TextTable::Fixed(r.speedup, 2) + " " + r.component;
    table.AddRow({r.component, what, TextTable::Fixed(ms(r.baseline_p99_us), 2),
                  TextTable::Fixed(ms(r.predicted_p99_us), 2),
                  TextTable::Fixed(ms(r.achieved_p99_us), 2),
                  TextTable::Fixed(ms(r.predicted_delta_us), 2),
                  TextTable::Fixed(ms(r.achieved_delta_us), 2),
                  TextTable::Fixed(ms(r.achieved_delta_us - r.predicted_delta_us), 2)});
  }
  Emit(table, flags.GetBool("csv"));

  // The question the command exists to answer: which upgrade actually buys latency.
  int64_t mismatches = 0;
  const WhatIfResult* best = nullptr;
  for (const WhatIfResult& r : results) {
    mismatches += r.critical_path_mismatches;
    if (best == nullptr || r.achieved_delta_us > best->achieved_delta_us) {
      best = &r;
    }
  }
  std::printf("%s on %s: best achieved p99 improvement is %s (%.2f ms; model predicted "
              "%.2f ms)\n",
              os_word.c_str(), profile_name.c_str(), best->component.c_str(),
              ms(best->achieved_delta_us), ms(best->predicted_delta_us));
  std::printf("critical-path invariant: %lld mismatches over %lld baseline "
              "interactions\n",
              static_cast<long long>(mismatches),
              static_cast<long long>(results.front().interactions));

  std::string report_path = flags.GetString("report-out", "");
  if (!report_path.empty()) {
    // No run/wall_ms block anywhere in the file: byte-identical across reruns and
    // --jobs values, so CI can cmp(1) two sweeps.
    std::string report = "{\"experiment\":\"whatif\",\"os\":\"" + os_word +
                         "\",\"profile\":\"" + profile_name + "\",\"points\":[";
    for (size_t i = 0; i < results.size(); ++i) {
      const WhatIfResult& r = results[i];
      JsonObject o;
      o.Str("component", r.component);
      o.Double("speedup", r.speedup);
      o.Int("rtt_delta_us", r.rtt_delta_us);
      o.Raw("whatif", WhatIfBlockJson(r));
      o.Raw("baseline_blame", ToJson(r.baseline.blame));
      o.Raw("adjusted_blame", ToJson(r.adjusted.blame));
      if (i > 0) {
        report += ',';
      }
      report += o.Finish();
    }
    report += "]}\n";
    if (!WriteFile(report_path, report)) {
      return 1;
    }
  }
  // stderr, so stdout stays byte-identical for any --jobs value.
  std::fprintf(stderr, "%zu whatif cells over %d workers\n", results.size(),
               sweep.workers());
  return 0;
}

const char* ProtocolWord(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kRdp:
      return "rdp";
    case ProtocolKind::kX:
      return "x";
    case ProtocolKind::kLbx:
      return "lbx";
    case ProtocolKind::kSlim:
      return "slim";
    case ProtocolKind::kVnc:
      return "vnc";
  }
  return "?";
}

// Largest total-time stage; ties go to the earlier pipeline stage.
const StageSummary* DominantStage(const AttributionResult& blame) {
  const StageSummary* best = nullptr;
  for (const StageSummary& s : blame.stages) {
    if (best == nullptr || s.total_us > best->total_us) {
      best = &s;
    }
  }
  return best;
}

int CmdBlame(FlagSet& flags) {
  // An --os entry is `name` or `name:protocol`; the suffix overrides the profile's
  // display protocol, so the same OS pipeline can be compared across encodings
  // (e.g. linux vs linux:lbx).
  struct BlameConfig {
    OsProfile profile;
    std::string os_word;
    std::string proto_word;
  };
  std::vector<BlameConfig> base;
  for (const std::string& token :
       SplitList(flags.GetString("os", "tse,linux,linux:lbx"))) {
    BlameConfig cfg;
    size_t colon = token.find(':');
    cfg.os_word = token.substr(0, colon);
    if (!ParseOs(cfg.os_word, &cfg.profile)) {
      return 2;
    }
    if (colon != std::string::npos) {
      ProtocolKind kind;
      if (!ParseProtocol(token.substr(colon + 1), &kind)) {
        return 2;
      }
      cfg.profile.protocol_kind = kind;
    }
    cfg.proto_word = ProtocolWord(cfg.profile.protocol_kind);
    base.push_back(std::move(cfg));
  }
  std::vector<int> sink_list;
  if (!ParseIntList(flags.GetString("sinks", "0,5"), "sinks", &sink_list)) {
    return 2;
  }
  if (base.empty() || sink_list.empty()) {
    std::fprintf(stderr, "blame needs at least one --os and one --sinks value\n");
    return 2;
  }

  // With --profile the whole grid runs behind that WAN pathology and the display-net
  // stage is decomposed into its five sub-stages (second table below).
  std::string wan_name = flags.GetString("profile", "");
  WanProfile wan;
  if (!wan_name.empty()) {
    try {
      wan = WanProfileByName(wan_name);
    } catch (const ConfigError& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  }

  Duration seconds = Duration::Seconds(flags.GetInt("seconds", 30));
  Duration threshold = Duration::Millis(flags.GetInt("threshold-ms", 100));
  double background_mbps = flags.GetDouble("background-mbps", 0.0);
  double loss = flags.GetDouble("loss", 0.0);
  int flap = static_cast<int>(flags.GetInt("flap-ms", 0));
  uint64_t base_seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  int jobs = static_cast<int>(flags.GetInt("jobs", 0));
  int sink_count = static_cast<int>(sink_list.size());
  int configs = static_cast<int>(base.size()) * sink_count;

  // OS-major, sinks-minor, each config with a position-derived seed and its own
  // attribution engine: output is byte-identical for any --jobs value.
  ParallelSweep sweep(jobs);
  auto results = sweep.Map(configs, [&](int i) {
    const BlameConfig& cfg = base[static_cast<size_t>(i / sink_count)];
    EndToEndOptions opt;
    opt.sinks = sink_list[static_cast<size_t>(i % sink_count)];
    opt.background_mbps = background_mbps;
    opt.duration = seconds;
    opt.seed = SweepSeed(base_seed, static_cast<uint64_t>(i));
    if (loss > 0.0) {
      opt.faults.link.loss_rate = loss;
    }
    if (flap > 0) {
      opt.faults.link.flap_every = Duration::Millis(2000);
      opt.faults.link.flap_duration = Duration::Millis(flap);
    }
    if (!wan_name.empty()) {
      opt.faults.link.wan.extra_delay = wan.extra_delay;
      opt.faults.link.wan.jitter = wan.jitter;
      opt.faults.link.wan.down_rate = wan.down_rate;
      opt.faults.link.wan.up_rate = wan.up_rate;
      opt.faults.link.wan.queue_bytes = wan.queue_bytes;
      opt.faults.link.wan.ge_p_good_to_bad = wan.ge_p_good_to_bad;
      opt.faults.link.wan.ge_p_bad_to_good = wan.ge_p_bad_to_good;
      opt.faults.link.wan.ge_loss_good = wan.ge_loss_good;
      opt.faults.link.wan.ge_loss_bad = wan.ge_loss_bad;
      opt.faults.seed = opt.seed ^ 0xFA017u;
    }
    AttributionConfig attr_cfg;
    attr_cfg.decompose_network = !wan_name.empty();
    LatencyAttribution attribution(attr_cfg);
    ObsConfig obs;
    obs.attribution = &attribution;
    return RunEndToEndLatency(cfg.profile, opt, &obs);
  });

  TextTable table({"os", "protocol", "sinks", "stage", "share", "p50 (ms)", "p99 (ms)",
                   "max (ms)"});
  for (int i = 0; i < configs; ++i) {
    const BlameConfig& cfg = base[static_cast<size_t>(i / sink_count)];
    int sinks = sink_list[static_cast<size_t>(i % sink_count)];
    for (const StageSummary& s : results[static_cast<size_t>(i)].blame.stages) {
      if (s.total_us == 0) {
        continue;  // this stage never saw time in this configuration
      }
      table.AddRow({cfg.os_word, cfg.proto_word, TextTable::Num(sinks), s.stage,
                    TextTable::Percent(s.share, 1),
                    TextTable::Fixed(static_cast<double>(s.p50_us) / 1000.0, 2),
                    TextTable::Fixed(static_cast<double>(s.p99_us) / 1000.0, 2),
                    TextTable::Fixed(static_cast<double>(s.max_us) / 1000.0, 2)});
    }
  }
  Emit(table, flags.GetBool("csv"));

  if (!wan_name.empty()) {
    // WAN-aware blame: where inside the wire the display-net microseconds went. The
    // shares are over the network grand total; the sub-stage sums equal the display-net
    // stage total exactly (net_mismatches counts any commit that violated this — 0).
    TextTable net_table({"os", "protocol", "sinks", "net stage", "share", "p50 (ms)",
                         "p99 (ms)", "max (ms)"});
    int64_t net_mismatches = 0;
    for (int i = 0; i < configs; ++i) {
      const BlameConfig& cfg = base[static_cast<size_t>(i / sink_count)];
      int sinks = sink_list[static_cast<size_t>(i % sink_count)];
      const AttributionResult& blame = results[static_cast<size_t>(i)].blame;
      net_mismatches += blame.net_mismatches;
      for (const StageSummary& s : blame.net_stages) {
        if (s.total_us == 0) {
          continue;
        }
        net_table.AddRow({cfg.os_word, cfg.proto_word, TextTable::Num(sinks), s.stage,
                          TextTable::Percent(s.share, 1),
                          TextTable::Fixed(static_cast<double>(s.p50_us) / 1000.0, 2),
                          TextTable::Fixed(static_cast<double>(s.p99_us) / 1000.0, 2),
                          TextTable::Fixed(static_cast<double>(s.max_us) / 1000.0, 2)});
      }
    }
    std::printf("display-net decomposition under the %s profile (%lld decomposition "
                "mismatches):\n",
                wan_name.c_str(), static_cast<long long>(net_mismatches));
    Emit(net_table, flags.GetBool("csv"));
  }

  // The question the command exists to answer: which configuration goes perceptible
  // first, and which resource is to blame when it does.
  int64_t threshold_us = threshold.ToMicros();
  int first = -1;
  for (int i = 0; i < configs; ++i) {
    const BlameConfig& cfg = base[static_cast<size_t>(i / sink_count)];
    const AttributionResult& blame = results[static_cast<size_t>(i)].blame;
    const StageSummary* top = DominantStage(blame);
    bool over = blame.p99_total_us > threshold_us;
    std::printf("%s/%s, %d sinks: p99 %.2f ms (%s %lld ms); dominant stage %s (%.0f%%)\n",
                cfg.os_word.c_str(), cfg.proto_word.c_str(),
                sink_list[static_cast<size_t>(i % sink_count)],
                static_cast<double>(blame.p99_total_us) / 1000.0,
                over ? "crosses" : "under", static_cast<long long>(threshold_us / 1000),
                top != nullptr ? top->stage.c_str() : "?",
                top != nullptr ? top->share * 100.0 : 0.0);
    if (over && first < 0) {
      first = i;
    }
  }
  if (first >= 0) {
    const BlameConfig& cfg = base[static_cast<size_t>(first / sink_count)];
    const AttributionResult& blame = results[static_cast<size_t>(first)].blame;
    const StageSummary* top = DominantStage(blame);
    std::printf("p99 first crosses %lld ms at %s/%s with %d sinks — blame %s\n",
                static_cast<long long>(threshold_us / 1000), cfg.os_word.c_str(),
                cfg.proto_word.c_str(),
                sink_list[static_cast<size_t>(first % sink_count)],
                top != nullptr ? top->stage.c_str() : "?");
  } else {
    std::printf("p99 stays under %lld ms across the grid\n",
                static_cast<long long>(threshold_us / 1000));
  }

  std::string report_path = flags.GetString("report-out", "");
  if (!report_path.empty()) {
    // No run/wall_ms block anywhere in the file: byte-identical across reruns and
    // --jobs values, so CI can cmp(1) two sweeps.
    std::string report = "{\"experiment\":\"blame\",\"points\":[";
    for (int i = 0; i < configs; ++i) {
      if (i > 0) {
        report += ',';
      }
      const BlameConfig& cfg = base[static_cast<size_t>(i / sink_count)];
      report += "{\"os\":\"" + cfg.os_word + "\",\"protocol\":\"" + cfg.proto_word +
                "\",\"sinks\":" +
                std::to_string(sink_list[static_cast<size_t>(i % sink_count)]) +
                ",\"blame\":" + ToJson(results[static_cast<size_t>(i)].blame) + "}";
    }
    report += "]}\n";
    if (!WriteFile(report_path, report)) {
      return 1;
    }
  }
  // stderr, so stdout stays byte-identical for any --jobs value.
  std::fprintf(stderr, "%d blame configs over %d workers\n", configs, sweep.workers());
  return 0;
}

// The evaluation the search settled on for `users`, if that candidate was probed.
const ConsolidationResult* FindProbe(const CapacityResult& r, int users) {
  for (const ConsolidationResult& probe : r.probes) {
    if (probe.users == users) {
      return &probe;
    }
  }
  return nullptr;
}

int CmdCapacity(FlagSet& flags) {
  // An --os entry is `name` or `name:protocol`, as in `blame`.
  struct CapacityConfig {
    OsProfile profile;
    std::string os_word;
    std::string proto_word;
  };
  std::vector<CapacityConfig> base;
  for (const std::string& token : SplitList(flags.GetString("os", "tse,linux"))) {
    CapacityConfig cfg;
    size_t colon = token.find(':');
    cfg.os_word = token.substr(0, colon);
    if (!ParseOs(cfg.os_word, &cfg.profile)) {
      return 2;
    }
    if (colon != std::string::npos) {
      ProtocolKind kind;
      if (!ParseProtocol(token.substr(colon + 1), &kind)) {
        return 2;
      }
      cfg.profile.protocol_kind = kind;
    }
    cfg.proto_word = ProtocolWord(cfg.profile.protocol_kind);
    base.push_back(std::move(cfg));
  }
  if (base.empty()) {
    std::fprintf(stderr, "capacity needs at least one --os entry\n");
    return 2;
  }

  CapacityOptions proto_options;
  proto_options.max_users = static_cast<int>(flags.GetInt("max-users", 16));
  proto_options.admission.max_utilization = flags.GetDouble("max-util", 0.85);
  proto_options.admission.max_p99_stall =
      Duration::Millis(flags.GetInt("max-p99-ms", 100));
  proto_options.behavior.duration = Duration::Seconds(flags.GetInt("seconds", 30));
  proto_options.behavior.sinks = static_cast<int>(flags.GetInt("sinks", 0));
  proto_options.behavior.burst_cpu = Duration::Millis(flags.GetInt("burst-ms", 300));
  proto_options.behavior.burst_period =
      Duration::Millis(flags.GetInt("burst-every-ms", 5000));
  proto_options.behavior.ram = Bytes::MiB(flags.GetInt("ram-mib", 64));
  uint64_t base_seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  int jobs = static_cast<int>(flags.GetInt("jobs", 0));
  int configs = static_cast<int>(base.size());

  // The sweep parallelizes across configurations only; each configuration's binary
  // search is sequential and memoized, with every candidate run on the same
  // position-derived seed. Output is byte-identical for any --jobs value. With --slo-*
  // flags every probe is watched; bundle stems carry the configuration and candidate N.
  SloSpec base_slo = SloSpecFromFlags(flags);
  ParallelSweep sweep(jobs);
  std::vector<CapacityResult> results;
  try {
    results = sweep.Map(configs, [&](int i) {
      CapacityOptions options = proto_options;
      options.behavior.seed = SweepSeed(base_seed, static_cast<uint64_t>(i));
      if (!base_slo.Any()) {
        return RunServerCapacity(base[static_cast<size_t>(i)].profile, options);
      }
      SloSpec cfg_slo = base_slo;
      cfg_slo.name = "capacity_" + base[static_cast<size_t>(i)].os_word + "_" +
                     base[static_cast<size_t>(i)].proto_word;
      ObsConfig obs;
      obs.slo = &cfg_slo;
      return RunServerCapacity(base[static_cast<size_t>(i)].profile, options, &obs);
    });
  } catch (const ConfigError& e) {
    std::fprintf(stderr, "bad capacity configuration — %s\n", e.what());
    return 2;
  }

  TextTable table({"os", "protocol", "latency-sized", "util-sized", "over-admits",
                   "p99 @ util (ms)", "CPU @ util", "resident @ latency"});
  for (int i = 0; i < configs; ++i) {
    const CapacityConfig& cfg = base[static_cast<size_t>(i)];
    const CapacityResult& r = results[static_cast<size_t>(i)];
    const ConsolidationResult* at_util = FindProbe(r, r.utilization_sized_users);
    const ConsolidationResult* at_latency = FindProbe(r, r.latency_sized_users);
    table.AddRow(
        {cfg.os_word, cfg.proto_word, TextTable::Num(r.latency_sized_users),
         TextTable::Num(r.utilization_sized_users),
         r.utilization_over_admits ? "yes" : "no",
         at_util != nullptr ? TextTable::Fixed(at_util->worst_p99_stall_ms, 1) : "-",
         at_util != nullptr ? TextTable::Percent(at_util->cpu_utilization, 1) : "-",
         at_latency != nullptr
             ? TextTable::Num(static_cast<int64_t>(at_latency->resident_pages)) + "/" +
                   TextTable::Num(static_cast<int64_t>(at_latency->total_frames))
             : "-"});
  }
  Emit(table, flags.GetBool("csv"));
  for (int i = 0; i < configs; ++i) {
    const CapacityConfig& cfg = base[static_cast<size_t>(i)];
    const CapacityResult& r = results[static_cast<size_t>(i)];
    if (!r.utilization_over_admits) {
      continue;
    }
    const ConsolidationResult* at_util = FindProbe(r, r.utilization_sized_users);
    std::printf("%s/%s: utilization sizing (< %.0f%% CPU) admits %d users, but the "
                "worst user's p99 stall there is %.1f ms — latency sizing stops at %d\n",
                cfg.os_word.c_str(), cfg.proto_word.c_str(),
                proto_options.admission.max_utilization * 100.0,
                r.utilization_sized_users,
                at_util != nullptr ? at_util->worst_p99_stall_ms : 0.0,
                r.latency_sized_users);
  }

  if (base_slo.Any()) {
    int violated = 0;
    for (int i = 0; i < configs; ++i) {
      for (const ConsolidationResult& probe : results[static_cast<size_t>(i)].probes) {
        if (!probe.slo.active || probe.slo.passed) {
          continue;
        }
        ++violated;
        std::printf("SLO violated at %s/%s with %d users: %s\n",
                    base[static_cast<size_t>(i)].os_word.c_str(),
                    base[static_cast<size_t>(i)].proto_word.c_str(), probe.users,
                    probe.slo.violating_objective.c_str());
        for (const std::string& path : probe.slo.postmortems) {
          std::printf("  postmortem: %s\n", path.c_str());
        }
      }
    }
    std::printf("SLO: %d probes violated\n", violated);
  }

  std::string report_path = flags.GetString("report-out", "");
  if (!report_path.empty()) {
    std::string report = "{\"experiment\":\"capacity_sweep\",\"points\":[";
    for (size_t i = 0; i < results.size(); ++i) {
      if (i > 0) {
        report += ',';
      }
      report += ToJson(results[i]);
    }
    report += "]}\n";
    if (!WriteFile(report_path, report)) {
      return 1;
    }
  }
  // stderr, so stdout stays byte-identical for any --jobs value.
  std::fprintf(stderr, "%d capacity configs over %d workers\n", configs, sweep.workers());
  return 0;
}

// --rewind-ms: run the consolidation under a periodic checkpoint ring and, when the
// SLO trips, fork a replay from the newest checkpoint at least that many virtual
// milliseconds before the violation — this time with the full tracer attached. The
// checkpointing and the fork are invisible to the model (tracing is passive: no
// events, no RNG), so the replay hits the violation at the exact same virtual
// instant, and the traced lead-up shows what the always-on flight recorder's short
// frozen window could not.
int RunConsolidationRewind(const OsProfile& profile, const ConsolidationOptions& opt,
                           SloSpec spec, FlagSet& flags, SloReport* out_slo) {
  int64_t rewind_ms = flags.GetInt("rewind-ms", 0);
  int64_t every_ms = flags.GetInt("checkpoint-every-ms", 250);
  if (every_ms <= 0) {
    std::fprintf(stderr, "--checkpoint-every-ms must be positive\n");
    return 2;
  }
  ObsConfig obs;
  obs.slo = &spec;
  ConsolidationRun monitored(profile, opt, &obs);

  std::vector<std::pair<TimePoint, std::vector<uint8_t>>> ring;
  TimePoint end = monitored.end_time();
  for (TimePoint t = TimePoint::Zero() + Duration::Millis(every_ms);
       t < end && !monitored.SloViolated(); t = t + Duration::Millis(every_ms)) {
    monitored.RunUntil(t);
    if (!monitored.SloViolated()) {
      ring.emplace_back(t, monitored.Snapshot());
    }
  }
  monitored.RunToEnd();
  bool violated = monitored.SloViolated();
  int64_t violated_at_us = monitored.SloViolatedAtUs();
  ConsolidationResult r = monitored.Finish();
  std::printf("consolidation on %s with %d users: worst p99 stall %.1f ms, CPU %.1f%%\n",
              r.os_name.c_str(), r.users, r.worst_p99_stall_ms,
              r.cpu_utilization * 100.0);
  *out_slo = std::move(r.slo);

  if (!violated) {
    std::printf("rewind: SLO held for the whole run; nothing to replay\n");
    return 0;
  }
  const std::vector<uint8_t>* chosen = nullptr;
  TimePoint chosen_at = TimePoint::Zero();
  for (const auto& [t, blob] : ring) {
    if (t.ToMicros() <= violated_at_us - rewind_ms * 1000) {
      chosen = &blob;
      chosen_at = t;
    }
  }
  if (chosen == nullptr) {
    std::fprintf(stderr,
                 "rewind: violation at %.1f ms (virtual) predates every checkpoint "
                 "minus --rewind-ms=%lld; lower --checkpoint-every-ms\n",
                 static_cast<double>(violated_at_us) / 1000.0,
                 static_cast<long long>(rewind_ms));
    return 1;
  }

  TracerConfig tracer_cfg;
  Tracer tracer(tracer_cfg);
  SloSpec replay_spec = spec;
  replay_spec.name += "_replay";  // the replay's own forensic bundle, distinct files
  ObsConfig replay_obs;
  replay_obs.slo = &replay_spec;
  replay_obs.tracer = &tracer;
  ConsolidationRun replay(profile, opt, &replay_obs);
  replay.Restore(*chosen);
  replay.RunToEnd();
  ConsolidationResult rr = replay.Finish();
  if (rr.slo.violated_at_us != violated_at_us) {
    std::fprintf(stderr,
                 "rewind: replay diverged from the monitored run (violation at %lld us "
                 "vs %lld us) — determinism bug, please report\n",
                 static_cast<long long>(rr.slo.violated_at_us),
                 static_cast<long long>(violated_at_us));
    return 1;
  }
  std::string trace_path = flags.GetString(
      "rewind-out", spec.out_dir.empty()
                        ? spec.name + ".rewind.trace.json"
                        : spec.out_dir + "/" + spec.name + ".rewind.trace.json");
  if (!WriteFile(trace_path, tracer.ToJson())) {
    std::fprintf(stderr, "rewind: cannot write %s\n", trace_path.c_str());
    return 1;
  }
  std::printf(
      "rewind: forked from the %.0f ms checkpoint (%zu in ring), replay reproduced "
      "the violation at %.3f ms (virtual); traced lead-up: %s\n",
      chosen_at.ToMicros() / 1000.0, ring.size(),
      static_cast<double>(violated_at_us) / 1000.0, trace_path.c_str());
  return 0;
}

int CmdPostmortem(FlagSet& flags) {
  if (flags.positional().size() < 2) {
    std::fprintf(stderr, "postmortem needs an experiment (typing|e2e|chaos|consolidation)\n");
    return 2;
  }
  std::string experiment = flags.positional()[1];
  if (experiment == "typing_under_load") {
    experiment = "typing";
  } else if (experiment == "end_to_end" || experiment == "end_to_end_latency") {
    experiment = "e2e";
  } else if (experiment == "chaos_point") {
    experiment = "chaos";
  }
  OsProfile profile;
  if (!ParseOs(flags.GetString("os", "tse"), &profile)) {
    return 2;
  }

  // Tight defaults: a p99 budget at the perception threshold and near-perfect
  // availability, so the command catches real degradation out of the box. Explicit
  // --slo-* flags override.
  SloSpec spec = SloSpecFromFlags(flags);
  if (!spec.Any()) {
    spec.max_worst_p99_ms = flags.GetDouble("slo-p99-ms", 100.0);
    spec.min_availability = flags.GetDouble("slo-availability", 0.99);
  }
  spec.name = experiment;
  ObsConfig obs;
  obs.slo = &spec;

  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  Duration seconds = Duration::Seconds(flags.GetInt("seconds", 30));
  SloReport slo;
  if (experiment == "typing") {
    TypingUnderLoadResult r = RunTypingUnderLoad(
        profile, static_cast<int>(flags.GetInt("sinks", 2)), seconds, seed,
        static_cast<int>(flags.GetInt("cpus", 1)), &obs);
    std::printf("typing on %s: avg stall %.1f ms, max %.1f ms\n", r.os_name.c_str(),
                r.avg_stall_ms, r.max_stall_ms);
    slo = std::move(r.slo);
  } else if (experiment == "e2e") {
    EndToEndOptions opt;
    opt.sinks = static_cast<int>(flags.GetInt("sinks", 0));
    opt.background_mbps = flags.GetDouble("background-mbps", 0.0);
    opt.duration = seconds;
    opt.seed = seed;
    if (flags.GetDouble("loss", 0.0) > 0.0) {
      opt.faults.link.loss_rate = flags.GetDouble("loss", 0.0);
    }
    EndToEndResult r = RunEndToEndLatency(profile, opt, &obs);
    std::printf("e2e on %s: total %.2f ms over %lld updates\n", r.os_name.c_str(),
                r.total_ms, static_cast<long long>(r.updates));
    slo = std::move(r.slo);
  } else if (experiment == "chaos") {
    ChaosOptions opt;
    opt.loss_rate = flags.GetDouble("loss", 0.05);
    int flap = static_cast<int>(flags.GetInt("flap-ms", 0));
    if (flap > 0) {
      opt.flap_every = Duration::Millis(flags.GetInt("flap-every-ms", 2000));
      opt.flap_duration = Duration::Millis(flap);
    }
    opt.disk_stall_rate = flags.GetDouble("disk-stall", 0.0);
    opt.disconnect_every = Duration::Millis(flags.GetInt("disconnect-ms", 0));
    opt.sinks = static_cast<int>(flags.GetInt("sinks", 0));
    opt.duration = seconds;
    opt.seed = seed;
    opt.threshold = Duration::Millis(flags.GetInt("threshold-ms", 150));
    ChaosPoint r = RunChaosPoint(profile, opt, &obs);
    std::printf("chaos on %s (loss %.1f%%, flap %.0f ms): p50 %.2f ms, p99 %.2f ms, "
                "availability %.3f\n",
                r.os_name.c_str(), r.loss_rate * 100.0, r.flap_ms, r.p50_ms, r.p99_ms,
                r.faults.availability);
    slo = std::move(r.slo);
  } else if (experiment == "consolidation") {
    ConsolidationOptions opt;
    opt.users = static_cast<int>(flags.GetInt("users", 8));
    opt.duration = seconds;
    opt.seed = seed;
    opt.sinks = static_cast<int>(flags.GetInt("sinks", 0));
    opt.burst_cpu = Duration::Millis(flags.GetInt("burst-ms", 300));
    opt.burst_period = Duration::Millis(flags.GetInt("burst-every-ms", 5000));
    opt.ram = Bytes::MiB(flags.GetInt("ram-mib", 64));
    if (flags.GetInt("rewind-ms", 0) > 0) {
      int rc;
      try {
        rc = RunConsolidationRewind(profile, opt, spec, flags, &slo);
      } catch (const ConfigError& e) {
        std::fprintf(stderr, "bad consolidation configuration — %s\n", e.what());
        return 2;
      }
      if (rc != 0) {
        return rc;
      }
    } else {
      ConsolidationResult r;
      try {
        r = RunConsolidation(profile, opt, &obs);
      } catch (const ConfigError& e) {
        std::fprintf(stderr, "bad consolidation configuration — %s\n", e.what());
        return 2;
      }
      std::printf("consolidation on %s with %d users: worst p99 stall %.1f ms, CPU %.1f%%\n",
                  r.os_name.c_str(), r.users, r.worst_p99_stall_ms,
                  r.cpu_utilization * 100.0);
      slo = std::move(r.slo);
    }
  } else {
    std::fprintf(stderr, "unknown experiment '%s' (typing|e2e|chaos|consolidation)\n",
                 experiment.c_str());
    return 2;
  }

  PrintSloReport(slo, "");
  std::printf("SLO %s\n", slo.passed ? "PASSED" : "FAILED");
  return 0;
}

bool ParseCategories(const std::string& list, uint32_t* mask) {
  uint32_t out = 0;
  for (const std::string& word : SplitList(list)) {
    if (word == "all") {
      out |= kAllTraceCategories;
    } else if (word == "sim") {
      out |= static_cast<uint32_t>(TraceCategory::kSim);
    } else if (word == "cpu") {
      out |= static_cast<uint32_t>(TraceCategory::kCpu);
    } else if (word == "sched") {
      out |= static_cast<uint32_t>(TraceCategory::kSched);
    } else if (word == "mem") {
      out |= static_cast<uint32_t>(TraceCategory::kMem);
    } else if (word == "net") {
      out |= static_cast<uint32_t>(TraceCategory::kNet);
    } else if (word == "proto") {
      out |= static_cast<uint32_t>(TraceCategory::kProto);
    } else if (word == "session") {
      out |= static_cast<uint32_t>(TraceCategory::kSession);
    } else if (word == "fault") {
      out |= static_cast<uint32_t>(TraceCategory::kFault);
    } else if (word == "blame") {
      out |= static_cast<uint32_t>(TraceCategory::kBlame);
    } else {
      std::fprintf(stderr,
                   "unknown --categories entry '%s' "
                   "(sim|cpu|sched|mem|net|proto|session|fault|blame|all)\n",
                   word.c_str());
      return false;
    }
  }
  *mask = out;
  return true;
}

bool WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << contents;
  return true;
}

int CmdTrace(FlagSet& flags) {
  if (flags.positional().size() < 2) {
    std::fprintf(stderr, "trace needs an experiment (typing|paging|e2e|sizing|traffic|gif)\n");
    return 2;
  }
  std::string experiment = flags.positional()[1];
  // Long-form aliases so docs can use the descriptive names.
  if (experiment == "typing_under_load") {
    experiment = "typing";
  } else if (experiment == "paging_latency") {
    experiment = "paging";
  } else if (experiment == "end_to_end" || experiment == "end_to_end_latency") {
    experiment = "e2e";
  } else if (experiment == "server_sizing") {
    experiment = "sizing";
  } else if (experiment == "app_workload_traffic") {
    experiment = "traffic";
  } else if (experiment == "gif_animation") {
    experiment = "gif";
  }

  TracerConfig tracer_cfg;
  std::string categories = flags.GetString("categories", "");
  if (!categories.empty() && !ParseCategories(categories, &tracer_cfg.categories)) {
    return 2;
  }
  Tracer tracer(tracer_cfg);
  MetricsRegistry metrics;
  std::string sampler_csv;
  ObsConfig obs;
  obs.tracer = &tracer;
  obs.metrics = &metrics;
  obs.sampler_csv = &sampler_csv;
  // Server experiments also attribute: their reports carry the blame block and the trace
  // carries per-interaction flow spans across the blame tracks. Protocol-only
  // experiments (traffic, gif) have no keystroke pipeline, so no engine (and no empty
  // blame tracks) for them.
  std::unique_ptr<LatencyAttribution> attribution;
  bool server_experiment = experiment == "typing" || experiment == "paging" ||
                           experiment == "e2e" || experiment == "sizing";
  if (server_experiment) {
    AttributionConfig attr_cfg;
    attr_cfg.tracer = &tracer;
    attribution = std::make_unique<LatencyAttribution>(attr_cfg);
    obs.attribution = attribution.get();
  }

  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  Duration seconds = Duration::Seconds(flags.GetInt("seconds", 30));
  std::string report;
  if (experiment == "typing") {
    OsProfile profile;
    if (!ParseOs(flags.GetString("os", "tse"), &profile)) {
      return 2;
    }
    TypingUnderLoadResult r = RunTypingUnderLoad(
        profile, static_cast<int>(flags.GetInt("sinks", 2)), seconds, seed,
        static_cast<int>(flags.GetInt("cpus", 1)), &obs);
    report = ToJson(r);
  } else if (experiment == "paging") {
    OsProfile profile;
    if (!ParseOs(flags.GetString("os", "linux"), &profile)) {
      return 2;
    }
    EvictionPolicy policy = flags.GetBool("protect") ? EvictionPolicy::kInteractiveProtect
                                                     : EvictionPolicy::kGlobalLru;
    PagingLatencyResult r =
        RunPagingLatency(profile, flags.GetBool("full-demand", true),
                         static_cast<int>(flags.GetInt("runs", 3)), seed, policy, &obs);
    report = ToJson(r);
  } else if (experiment == "e2e") {
    OsProfile profile;
    if (!ParseOs(flags.GetString("os", "tse"), &profile)) {
      return 2;
    }
    EndToEndOptions opt;
    opt.sinks = static_cast<int>(flags.GetInt("sinks", 0));
    opt.background_mbps = flags.GetDouble("background-mbps", 0.0);
    opt.duration = seconds;
    opt.seed = seed;
    EndToEndResult r = RunEndToEndLatency(profile, opt, &obs);
    report = ToJson(r);
  } else if (experiment == "sizing") {
    OsProfile profile;
    if (!ParseOs(flags.GetString("os", "tse"), &profile)) {
      return 2;
    }
    SizingPoint r = RunServerSizing(profile, static_cast<int>(flags.GetInt("users", 10)),
                                    {}, seconds, seed, &obs);
    report = ToJson(r);
  } else if (experiment == "traffic") {
    ProtocolKind kind;
    if (!ParseProtocol(flags.GetString("protocol", "rdp"), &kind)) {
      return 2;
    }
    ProtocolTrafficResult r = RunAppWorkloadTraffic(
        kind, seed, static_cast<int>(flags.GetInt("steps", 600)), &obs);
    report = ToJson(r);
  } else if (experiment == "gif") {
    ProtocolKind kind;
    if (!ParseProtocol(flags.GetString("protocol", "rdp"), &kind)) {
      return 2;
    }
    GifAnimationOptions opt;
    opt.frames = static_cast<int>(flags.GetInt("frames", 10));
    opt.duration = Duration::Seconds(flags.GetInt("seconds", 20));
    opt.seed = seed;
    if (flags.GetBool("loop-aware")) {
      opt.cache_policy = CachePolicy::kLoopAware;
    }
    AnimationLoadResult r = RunGifAnimation(kind, opt, &obs);
    report = ToJson(r);
  } else {
    std::fprintf(stderr, "unknown experiment '%s' (typing|paging|e2e|sizing|traffic|gif)\n",
                 experiment.c_str());
    return 2;
  }

  std::string trace_path = flags.GetString("out", "trace.json");
  std::string metrics_path = flags.GetString("metrics-out", "metrics.csv");
  std::string report_path = flags.GetString("report-out", "report.json");
  if (!WriteFile(trace_path, tracer.ToJson()) || !WriteFile(metrics_path, sampler_csv) ||
      !WriteFile(report_path, report + "\n")) {
    return 1;
  }
  std::printf("%s: %zu trace events on %zu tracks -> %s; gauges -> %s; report -> %s\n",
              experiment.c_str(), tracer.event_count(), tracer.track_count(),
              trace_path.c_str(), metrics_path.c_str(), report_path.c_str());
  return 0;
}

int CmdReplay(FlagSet& flags) {
  if (flags.positional().size() < 2) {
    std::fprintf(stderr, "replay needs a trace file\n");
    return 2;
  }
  ProtocolKind kind;
  if (!ParseProtocol(flags.GetString("protocol", "rdp"), &kind)) {
    return 2;
  }
  std::ifstream in(flags.positional()[1]);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", flags.positional()[1].c_str());
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  auto script = ParseScript(buffer.str(), &error);
  if (!script) {
    std::fprintf(stderr, "parse error: %s\n", error.c_str());
    return 2;
  }
  // Replay through the protocol-only harness used by the traffic experiments.
  Simulator sim;
  Link link(sim);
  MessageSender display(link, HeaderModel::TcpIp());
  MessageSender input(link, HeaderModel::TcpIp());
  ProtoTap tap(Duration::Seconds(1));
  Rng rng(1);
  std::unique_ptr<DisplayProtocol> protocol;
  switch (kind) {
    case ProtocolKind::kRdp:
      protocol = std::make_unique<RdpProtocol>(sim, display, input, &tap, rng);
      break;
    case ProtocolKind::kX:
      protocol = std::make_unique<XProtocol>(sim, display, input, &tap, rng);
      break;
    case ProtocolKind::kLbx:
      protocol = std::make_unique<LbxProtocol>(sim, display, input, &tap, rng);
      break;
    case ProtocolKind::kSlim:
      protocol = std::make_unique<SlimProtocol>(sim, display, input, &tap, rng);
      break;
    case ProtocolKind::kVnc: {
      auto vnc = std::make_unique<VncProtocol>(sim, display, input, &tap, rng);
      vnc->StartClientPull();
      protocol = std::move(vnc);
      break;
    }
  }
  script->Replay(sim, *protocol);
  sim.RunUntil(TimePoint::Zero() + script->TotalDuration());
  if (auto* vnc = dynamic_cast<VncProtocol*>(protocol.get())) {
    vnc->StopClientPull();
  }
  protocol->Flush();
  sim.Run();
  std::printf("replayed '%s' (%zu steps, %s of user time) over %s:\n",
              script->name().c_str(), script->steps().size(),
              script->TotalDuration().ToString().c_str(), protocol->name().c_str());
  std::printf("  display: %lld msgs, %lld bytes;  input: %lld msgs, %lld bytes\n",
              static_cast<long long>(tap.messages(Channel::kDisplay)),
              static_cast<long long>(tap.counted_bytes(Channel::kDisplay).count()),
              static_cast<long long>(tap.messages(Channel::kInput)),
              static_cast<long long>(tap.counted_bytes(Channel::kInput).count()));
  return 0;
}

int Run(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  std::string command = argv[1];
  FlagSet flags(argc, argv,
                {"os", "seconds", "sinks", "cpus", "full-demand", "runs", "protect",
                 "protocol", "steps", "no-banner", "no-marquee", "frames", "loop-aware",
                 "mbps", "users", "background-mbps", "client", "csv", "experiment",
                 "jobs", "seed", "out", "metrics-out", "report-out", "categories",
                 "loss", "flap-ms", "flap-every-ms", "disk-stall", "disconnect-ms",
                 "threshold-ms", "max-users", "max-util", "max-p99-ms", "burst-ms",
                 "burst-every-ms", "ram-mib", "profile", "starve-after-ms",
                 "component", "speedup", "rtt-delta-ms", "degrade",
                 "slo-p99-ms", "slo-availability", "slo-backlog-kb", "slo-starved",
                 "postmortem-dir", "rewind-ms", "checkpoint-every-ms", "rewind-out"});
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    return 2;
  }
  if (command == "idle") {
    return CmdIdle(flags);
  }
  if (command == "typing") {
    return CmdTyping(flags);
  }
  if (command == "paging") {
    return CmdPaging(flags);
  }
  if (command == "traffic") {
    return CmdTraffic(flags);
  }
  if (command == "webpage") {
    return CmdWebpage(flags);
  }
  if (command == "gif") {
    return CmdGif(flags);
  }
  if (command == "rtt") {
    return CmdRtt(flags);
  }
  if (command == "sizing") {
    return CmdSizing(flags);
  }
  if (command == "capacity") {
    return CmdCapacity(flags);
  }
  if (command == "e2e") {
    return CmdE2e(flags);
  }
  if (command == "sweep") {
    return CmdSweep(flags);
  }
  if (command == "chaos") {
    return CmdChaos(flags);
  }
  if (command == "wan") {
    return CmdWan(flags);
  }
  if (command == "whatif") {
    return CmdWhatIf(flags);
  }
  if (command == "blame") {
    return CmdBlame(flags);
  }
  if (command == "postmortem") {
    return CmdPostmortem(flags);
  }
  if (command == "trace") {
    return CmdTrace(flags);
  }
  if (command == "replay") {
    return CmdReplay(flags);
  }
  return Usage();
}

}  // namespace
}  // namespace tcs

int main(int argc, char** argv) {
  return tcs::Run(argc, argv);
}
