#!/usr/bin/env bash
# Re-bless the golden report corpus in tests/golden/.
#
# Builds golden_report_test and reruns it with TCS_REGEN_GOLDEN=1, which makes each
# case rewrite its golden file instead of comparing against it. Run this after an
# intentional change to simulation behavior or report formatting, then review the
# diff under tests/golden/ before committing.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" --target golden_report_test -j >/dev/null

mkdir -p tests/golden
TCS_REGEN_GOLDEN=1 "$BUILD_DIR/tests/golden_report_test"

echo "Regenerated $(ls tests/golden/*.json | wc -l) golden files:"
git -c core.pager=cat diff --stat -- tests/golden || true
