#!/usr/bin/env bash
# Re-bless (or verify) the golden report corpus in tests/golden/.
#
# Default mode builds golden_report_test and reruns it with TCS_REGEN_GOLDEN=1, which
# makes each case rewrite its golden file instead of comparing against it. Run this
# after an intentional change to simulation behavior or report formatting, then review
# the diff under tests/golden/ before committing.
#
# --check regenerates into the working tree and then fails (exit 1) if any golden file
# changed — i.e. the committed corpus no longer matches what the build produces. CI's
# golden-no-rebless job runs this; it catches both behavior drift and a re-bless that
# was run but not committed. wall_ms (the one nondeterministic report field) is
# neutralized before comparing, and in-sync files are restored so a passing check
# leaves the working tree clean.
set -euo pipefail

cd "$(dirname "$0")/.."

CHECK=0
if [[ "${1:-}" == "--check" ]]; then
  CHECK=1
fi

BUILD_DIR="${BUILD_DIR:-build}"
cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" --target golden_report_test -j >/dev/null

mkdir -p tests/golden
# This also runs the GoldenReportGuard tests, which have no regen path: the
# checkpointed-run guard compares a fork-from-snapshot replay against the committed
# corpus even while the corpus is being re-blessed, so a checkpoint-layer drift aborts
# both a plain regen and --check. There is deliberately nothing to re-bless for it.
TCS_REGEN_GOLDEN=1 "$BUILD_DIR/tests/golden_report_test"

if [[ "$CHECK" == 1 ]]; then
  # Compare each regenerated file against HEAD with wall_ms zeroed on both sides
  # (same normalization golden_report_test applies): wall time is nondeterministic
  # by contract and must not fail the check.
  drifted=0
  for f in tests/golden/*.json; do
    if ! diff -u \
        <(git show "HEAD:$f" | sed -E 's/"wall_ms":[-+0-9.eE]+/"wall_ms":0/g') \
        <(sed -E 's/"wall_ms":[-+0-9.eE]+/"wall_ms":0/g' "$f") \
        --label "HEAD:$f" --label "$f"; then
      drifted=1
    else
      git checkout --quiet -- "$f"  # in sync: drop the regenerated wall_ms churn
    fi
  done
  if [[ "$drifted" == 1 ]]; then
    echo "golden corpus drifted: regenerating produced the diff above." >&2
    echo "If the change is intentional, commit the regenerated files." >&2
    exit 1
  fi
  echo "golden corpus is in sync ($(ls tests/golden/*.json | wc -l) files)."
else
  echo "Regenerated $(ls tests/golden/*.json | wc -l) golden files:"
  git -c core.pager=cat diff --stat -- tests/golden || true
fi
