#!/usr/bin/env python3
"""Compare a google-benchmark JSON results file against BENCH_BASELINE.json.

Usage:
  bench_compare.py results.json [--baseline BENCH_BASELINE.json]
                   [--threshold 0.10] [--strict] [--summary-md PATH]

For every benchmark entry in the baseline whose gbench name appears in the results
file, the tool extracts the tracked metric (a named counter, or real_time), compares
it against the recorded "current" value, and prints a table of deltas. A change past
--threshold in the losing direction is a REGRESSION; --strict turns any regression
into a nonzero exit for gating. Without --strict the exit code is always 0 (the CI
bench-smoke job records trends, it does not gate: 1-repetition CI runners are noisy).

Baseline entry fields the tool understands (all optional except unit/current):
  "bench_name": exact gbench benchmark name (e.g. "BM_SimulateConsolidatedUsers/512");
                defaults to the entry's key.
  "counter":    counter to read from the result (e.g. "items_per_second",
                "wall_s_per_sim_s"); defaults from the unit, else real_time is used.
  "better":     "higher" or "lower"; defaults from the unit.
  "current":    the tracked scalar. Entries whose current is not a scalar are skipped.

With --benchmark_repetitions, aggregate rows are emitted per benchmark; the tool
prefers the "_median" aggregate and otherwise uses the plain (non-aggregate) row.
--summary-md appends the comparison as a GitHub-flavored-Markdown table to PATH
(append, so several invocations can share one $GITHUB_STEP_SUMMARY file).
Stdlib only — no pip dependencies.
"""

import argparse
import json
import sys

# unit -> (counter name or None for real_time, better direction)
UNIT_DEFAULTS = {
    "items_per_second": ("items_per_second", "higher"),
    "wall_s_per_sim_s": ("wall_s_per_sim_s", "lower"),
    "ns_per_simulated_second": (None, "lower"),
}


def load_results(path):
    with open(path) as f:
        data = json.load(f)
    if "benchmarks" not in data:
        raise SystemExit(f"{path}: not a google-benchmark JSON file (no 'benchmarks')")
    by_name = {}
    for row in data["benchmarks"]:
        name = row.get("name", "")
        base = row.get("run_name", name)
        agg = row.get("aggregate_name")
        # Prefer median aggregates; fall back to the raw (non-aggregate) row.
        if agg == "median":
            by_name[base] = row
        elif agg is None and base not in by_name:
            by_name[base] = row
    return data, by_name


def metric_of(row, counter):
    if counter is None:
        if "real_time" not in row:
            raise KeyError(f"no 'real_time' in result row '{row.get('name')}'")
        return float(row["real_time"]), row.get("time_unit", "ns")
    if counter in row:
        return float(row[counter]), counter
    raise KeyError(f"counter '{counter}' not in result row '{row.get('name')}'")


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("results", help="google-benchmark --benchmark_out JSON file")
    ap.add_argument("--baseline", default="BENCH_BASELINE.json")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="relative change flagged as regression (default 0.10)")
    ap.add_argument("--strict", action="store_true",
                    help="exit 1 if any regression exceeds the threshold")
    ap.add_argument("--summary-md", metavar="PATH",
                    help="append the comparison as a Markdown table to PATH "
                         "(e.g. $GITHUB_STEP_SUMMARY)")
    args = ap.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    _, results = load_results(args.results)

    rows = []
    regressions = []
    skipped = []
    compared_names = set()
    for key, entry in baseline.get("benchmarks", {}).items():
        # A baseline entry that is not an object (hand-edited shorthand, merge damage)
        # is a skip, not a crash: the other entries still compare.
        if not isinstance(entry, dict):
            skipped.append((key, f"baseline entry is {type(entry).__name__}, not an object"))
            continue
        current = entry.get("current")
        if not isinstance(current, (int, float)):
            skipped.append((key, "non-scalar baseline"))
            continue
        unit = entry.get("unit", "")
        default_counter, default_better = UNIT_DEFAULTS.get(unit, (None, "higher"))
        counter = entry.get("counter", default_counter)
        better = entry.get("better", default_better)
        bench_name = entry.get("bench_name", key)
        compared_names.add(bench_name)
        row = results.get(bench_name)
        if row is None:
            skipped.append((key, f"'{bench_name}' not in results"))
            continue
        try:
            measured, _ = metric_of(row, counter)
        except KeyError as e:
            skipped.append((key, str(e)))
            continue
        delta = (measured - current) / current if current else float("inf")
        worse = -delta if better == "higher" else delta
        flag = ""
        if worse > args.threshold:
            flag = "REGRESSION"
            regressions.append(key)
        elif -worse > args.threshold:
            flag = "improved"
        rows.append((key, current, measured, delta, better, flag))

    # Benchmarks measured this run that no baseline entry claims: a new benchmark landing
    # before its baseline entry must surface as "no baseline key", never as a KeyError.
    unbaselined = sorted(name for name in results if name not in compared_names)

    if rows:
        name_w = max(len(r[0]) for r in rows)
        print(f"{'benchmark':<{name_w}}  {'baseline':>14}  {'measured':>14}  "
              f"{'delta':>8}  {'better':>6}  status")
        for key, cur, meas, delta, better, flag in rows:
            print(f"{key:<{name_w}}  {cur:>14.6g}  {meas:>14.6g}  "
                  f"{delta:>+7.1%}  {better:>6}  {flag}")
    for key, why in skipped:
        print(f"skipped {key}: {why}", file=sys.stderr)
    for name in unbaselined:
        print(f"no baseline key for {name}: measured but not compared", file=sys.stderr)
    if not rows:
        print("no comparable benchmarks found", file=sys.stderr)
        return 1

    if args.summary_md:
        status_md = {"REGRESSION": ":red_circle: regression",
                     "improved": ":green_circle: improved", "": "ok"}
        with open(args.summary_md, "a") as f:
            f.write("### Benchmark trend vs BENCH_BASELINE\n\n")
            f.write("| benchmark | baseline | measured | delta | better | status |\n")
            f.write("|---|---:|---:|---:|---|---|\n")
            for key, cur, meas, delta, better, flag in rows:
                f.write(f"| `{key}` | {cur:.6g} | {meas:.6g} | {delta:+.1%} "
                        f"| {better} | {status_md[flag]} |\n")
            if skipped:
                f.write(f"\n{len(skipped)} entr{'y' if len(skipped) == 1 else 'ies'} "
                        "skipped (not in this run's results).\n")
            f.write("\n")

    if regressions:
        print(f"\n{len(regressions)} regression(s) past {args.threshold:.0%}: "
              + ", ".join(regressions), file=sys.stderr)
        if args.strict:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
